//! The `/metrics` byte golden: one scrape of an idle server must render
//! every registered series — zero-valued included — in the canonical
//! registration order, byte for byte.
//!
//! Two contracts are pinned at once:
//!
//! * **byte stability** — the historical series (the five net counters,
//!   the six serve counters, the request-latency histogram) render exactly
//!   the bytes the pre-registry implementation emitted, so dashboards and
//!   scrapers survive the `cqc-obs` migration; new series are strictly
//!   appended after them;
//! * **the idle-server fix** — every series is registered at startup, so
//!   the very first scrape exposes the full zeroed inventory instead of
//!   only the counters that happened to be touched.
//!
//! The only non-literal lines are `cqc_pool_width` (machine-dependent
//! worker-pool width, formatted dynamically) and the event-loop block at
//! the very end (`cqc_event_loop_tick_seconds`, `cqc_event_loop_wakeups_total`):
//! the loop ticks while the scrape's own connection is accepted and read,
//! so those values are timing-dependent and checked structurally instead.
//!
//! A second golden scrapes **after traffic** and pins the cross-series
//! arithmetic: the serving core's request counter must equal the sum of
//! the per-protocol request counts, the latency histogram must have seen
//! exactly that many samples, and the `# TYPE` inventory must be unchanged
//! from the idle scrape.

use cqc_net::{NetConfig, RunningServer};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// The value of the single un-labelled series `name` in a scrape body.
fn series_value(body: &str, name: &str) -> u64 {
    body.lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .unwrap_or_else(|| panic!("series `{name}` missing in:\n{body}"))
        .parse()
        .unwrap_or_else(|e| panic!("series `{name}` not an integer: {e}"))
}

/// Scrape `GET /metrics` once over a fresh connection; returns the body.
fn scrape(server: &RunningServer) -> String {
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).unwrap();
    assert!(status_line.contains("200"), "{status_line}");
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((k, v)) = line.split_once(':') {
            if k.eq_ignore_ascii_case("content-length") {
                content_length = v.trim().parse().unwrap();
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).unwrap();
    String::from_utf8(body).unwrap()
}

/// A zeroed latency-bucket histogram block under `name`.
fn zeroed_histogram(name: &str) -> String {
    let mut out = format!("# TYPE {name} histogram\n");
    for le in [
        "0.0001", "0.000316", "0.001", "0.00316", "0.01", "0.0316", "0.1", "0.316", "1", "3.16",
        "10", "+Inf",
    ] {
        out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} 0\n"));
    }
    out.push_str(&format!("{name}_sum 0\n{name}_count 0\n"));
    out
}

fn counter(name: &str, help: &str, value: u64) -> String {
    format!("# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n")
}

fn gauge(name: &str, help: &str, value: u64) -> String {
    format!("# HELP {name} {help}\n# TYPE {name} gauge\n{name} {value}\n")
}

#[test]
fn an_idle_server_scrape_matches_the_golden_bytes() {
    let server = RunningServer::bind("127.0.0.1:0", NetConfig::default()).expect("bind");
    let got = scrape(&server);
    server.shutdown();

    // the scrape itself is the one observed event: its TCP connection was
    // accepted (and is still open), and its GET was parsed before the
    // handler rendered the registry; the response counters bump only
    // after the body is written, so they are still zero in the body
    let mut expected = String::new();
    expected.push_str(&counter(
        "cqc_connections_total",
        "TCP connections accepted",
        1,
    ));
    expected.push_str(&counter(
        "cqc_http_requests_total",
        "HTTP requests parsed",
        1,
    ));
    expected.push_str(&counter(
        "cqc_ndjson_lines_total",
        "raw NDJSON lines served over TCP",
        0,
    ));
    expected.push_str(&counter(
        "cqc_http_responses_2xx_total",
        "HTTP responses with a 2xx status",
        0,
    ));
    expected.push_str(&counter(
        "cqc_http_responses_4xx_total",
        "HTTP responses with a 4xx status",
        0,
    ));
    expected.push_str(&counter(
        "cqc_serve_requests_total",
        "count requests handled by the serving core",
        0,
    ));
    expected.push_str(&counter(
        "cqc_serve_request_errors_total",
        "count requests answered with an error",
        0,
    ));
    expected.push_str(&counter(
        "cqc_shard_work_items_total",
        "work items (databases) evaluated across all requests",
        0,
    ));
    expected.push_str(&counter(
        "cqc_plan_cache_hits_total",
        "requests served from the prepared-plan cache",
        0,
    ));
    expected.push_str(&counter(
        "cqc_plan_cache_misses_total",
        "requests that prepared a new plan",
        0,
    ));
    expected.push_str(&counter(
        "cqc_plan_cache_evictions_total",
        "plans evicted by the LRU capacity bound",
        0,
    ));
    expected.push_str(&zeroed_histogram("cqc_request_latency_seconds"));
    expected.push_str(&counter(
        "cqc_oracle_calls_total",
        "EdgeFree oracle calls issued while answering count requests",
        0,
    ));
    expected.push_str(&counter(
        "cqc_colour_repetitions_total",
        "colour-coding repetitions budgeted across evaluated work items",
        0,
    ));
    expected.push_str(&zeroed_histogram("cqc_shard_merge_seconds"));
    expected.push_str(&gauge(
        "cqc_pool_width",
        "persistent worker-pool width (participating threads)",
        cqc_runtime::pool::global().width() as u64,
    ));
    expected.push_str(&gauge(
        "cqc_pool_queue_depth",
        "pool dispatches currently in flight",
        0,
    ));
    expected.push_str(&gauge(
        "cqc_active_connections",
        "TCP connections currently open",
        1,
    ));
    // admission-control series (event-driven rewrite): zero on an idle
    // server, appended after the historical prefix
    expected.push_str(&counter(
        "cqc_connections_rejected_total",
        "connections rejected at the admission cap with a load-shed response",
        0,
    ));
    expected.push_str(&counter(
        "cqc_requests_shed_total",
        "requests shed with an overload response (dispatch queue full)",
        0,
    ));
    expected.push_str(&counter(
        "cqc_connection_panics_total",
        "request handlers that panicked (answered with an internal error)",
        0,
    ));
    expected.push_str(&counter(
        "cqc_accept_errors_total",
        "transient accept failures backed off by the event loop",
        0,
    ));
    expected.push_str(&gauge(
        "cqc_dispatch_queue_depth",
        "requests queued or executing in the dispatcher",
        0,
    ));

    // Everything up to the event-loop block is byte-exact…
    assert!(
        got.starts_with(&expected),
        "idle /metrics drifted from the golden bytes:\ngot:\n{got}\nexpected prefix:\n{expected}"
    );
    // …the event-loop block itself is timing-dependent (the loop ticked
    // while this very scrape was accepted and read), so it is pinned
    // structurally: the tick histogram renders first, internally
    // consistent (+Inf bucket == count), and the wakeups counter closes
    // the scrape.
    let tail = &got[expected.len()..];
    assert!(
        tail.starts_with("# TYPE cqc_event_loop_tick_seconds histogram\n"),
        "{tail}"
    );
    let tick_count = series_value(tail, "cqc_event_loop_tick_seconds_count");
    let inf_bucket: u64 = tail
        .lines()
        .find_map(|l| l.strip_prefix("cqc_event_loop_tick_seconds_bucket{le=\"+Inf\"} "))
        .expect("+Inf bucket present")
        .parse()
        .unwrap();
    assert_eq!(inf_bucket, tick_count, "{tail}");
    assert!(tick_count > 0, "the loop never ticked? {tail}");
    let wakeups_block = format!(
        "# HELP cqc_event_loop_wakeups_total event-loop polls woken by the wake socket\n\
         # TYPE cqc_event_loop_wakeups_total counter\n\
         cqc_event_loop_wakeups_total {}\n",
        series_value(tail, "cqc_event_loop_wakeups_total")
    );
    assert!(tail.ends_with(&wakeups_block), "{tail}");
}

const COUNT_REQ: &str = r#"{"id": 1, "query": "ans(x) :- E(x, y), E(x, z), y != z", "dbs": ["universe 4\nrelation E 2\nE 0 1\nE 0 2\nE 3 1\nE 3 2\n"], "seed": 7, "method": "exact"}"#;

#[test]
fn a_post_traffic_scrape_keeps_structure_and_counter_arithmetic() {
    let server = RunningServer::bind("127.0.0.1:0", NetConfig::default()).expect("bind");

    // three HTTP `POST /count` requests over fresh connections…
    for _ in 0..3 {
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let request = format!(
            "POST /count HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{COUNT_REQ}",
            COUNT_REQ.len()
        );
        stream.write_all(request.as_bytes()).unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 200"), "{raw}");
    }
    // …and two raw NDJSON lines over one sniffed connection
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    for _ in 0..2 {
        stream.write_all(COUNT_REQ.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        assert!(response.contains("\"estimate\":2,"), "{response}");
    }
    drop(reader);
    drop(stream);

    let got = scrape(&server);
    server.shutdown();

    // structure: the `# TYPE` inventory is exactly the idle one, in order
    let types: Vec<&str> = got
        .lines()
        .filter_map(|l| l.strip_prefix("# TYPE "))
        .collect();
    assert_eq!(
        types,
        [
            "cqc_connections_total counter",
            "cqc_http_requests_total counter",
            "cqc_ndjson_lines_total counter",
            "cqc_http_responses_2xx_total counter",
            "cqc_http_responses_4xx_total counter",
            "cqc_serve_requests_total counter",
            "cqc_serve_request_errors_total counter",
            "cqc_shard_work_items_total counter",
            "cqc_plan_cache_hits_total counter",
            "cqc_plan_cache_misses_total counter",
            "cqc_plan_cache_evictions_total counter",
            "cqc_request_latency_seconds histogram",
            "cqc_oracle_calls_total counter",
            "cqc_colour_repetitions_total counter",
            "cqc_shard_merge_seconds histogram",
            "cqc_pool_width gauge",
            "cqc_pool_queue_depth gauge",
            "cqc_active_connections gauge",
            "cqc_connections_rejected_total counter",
            "cqc_requests_shed_total counter",
            "cqc_connection_panics_total counter",
            "cqc_accept_errors_total counter",
            "cqc_dispatch_queue_depth gauge",
            "cqc_event_loop_tick_seconds histogram",
            "cqc_event_loop_wakeups_total counter",
        ],
        "{got}"
    );

    // arithmetic: the serving core handled exactly the per-protocol sum
    let http_counts = 3u64;
    let ndjson_lines = series_value(&got, "cqc_ndjson_lines_total");
    assert_eq!(ndjson_lines, 2);
    assert_eq!(
        series_value(&got, "cqc_serve_requests_total"),
        http_counts + ndjson_lines,
        "{got}"
    );
    // every handled request recorded exactly one latency sample
    assert_eq!(
        series_value(&got, "cqc_request_latency_seconds_count"),
        http_counts + ndjson_lines,
        "{got}"
    );
    // the three count responses are the only 2xx bumps in the body (the
    // final scrape's own 200 bumps after its body was rendered)
    assert_eq!(series_value(&got, "cqc_http_responses_2xx_total"), 3);
    assert_eq!(series_value(&got, "cqc_http_requests_total"), 4); // 3 + this scrape
    assert_eq!(series_value(&got, "cqc_serve_request_errors_total"), 0);
    assert_eq!(series_value(&got, "cqc_connections_total"), 5);
}
