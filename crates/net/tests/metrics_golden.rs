//! The `/metrics` byte golden: one scrape of an idle server must render
//! every registered series — zero-valued included — in the canonical
//! registration order, byte for byte.
//!
//! Two contracts are pinned at once:
//!
//! * **byte stability** — the historical series (the five net counters,
//!   the six serve counters, the request-latency histogram) render exactly
//!   the bytes the pre-registry implementation emitted, so dashboards and
//!   scrapers survive the `cqc-obs` migration; new series are strictly
//!   appended after them;
//! * **the idle-server fix** — every series is registered at startup, so
//!   the very first scrape exposes the full zeroed inventory instead of
//!   only the counters that happened to be touched.
//!
//! The only non-literal line is `cqc_pool_width`, which reports the
//! machine-dependent worker-pool width and is formatted dynamically.

use cqc_net::{NetConfig, RunningServer};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Scrape `GET /metrics` once over a fresh connection; returns the body.
fn scrape(server: &RunningServer) -> String {
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).unwrap();
    assert!(status_line.contains("200"), "{status_line}");
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((k, v)) = line.split_once(':') {
            if k.eq_ignore_ascii_case("content-length") {
                content_length = v.trim().parse().unwrap();
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).unwrap();
    String::from_utf8(body).unwrap()
}

/// A zeroed latency-bucket histogram block under `name`.
fn zeroed_histogram(name: &str) -> String {
    let mut out = format!("# TYPE {name} histogram\n");
    for le in [
        "0.0001", "0.000316", "0.001", "0.00316", "0.01", "0.0316", "0.1", "0.316", "1", "3.16",
        "10", "+Inf",
    ] {
        out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} 0\n"));
    }
    out.push_str(&format!("{name}_sum 0\n{name}_count 0\n"));
    out
}

fn counter(name: &str, help: &str, value: u64) -> String {
    format!("# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n")
}

fn gauge(name: &str, help: &str, value: u64) -> String {
    format!("# HELP {name} {help}\n# TYPE {name} gauge\n{name} {value}\n")
}

#[test]
fn an_idle_server_scrape_matches_the_golden_bytes() {
    let server = RunningServer::bind("127.0.0.1:0", NetConfig::default()).expect("bind");
    let got = scrape(&server);
    server.shutdown();

    // the scrape itself is the one observed event: its TCP connection was
    // accepted (and is still open), and its GET was parsed before the
    // handler rendered the registry; the response counters bump only
    // after the body is written, so they are still zero in the body
    let mut expected = String::new();
    expected.push_str(&counter(
        "cqc_connections_total",
        "TCP connections accepted",
        1,
    ));
    expected.push_str(&counter(
        "cqc_http_requests_total",
        "HTTP requests parsed",
        1,
    ));
    expected.push_str(&counter(
        "cqc_ndjson_lines_total",
        "raw NDJSON lines served over TCP",
        0,
    ));
    expected.push_str(&counter(
        "cqc_http_responses_2xx_total",
        "HTTP responses with a 2xx status",
        0,
    ));
    expected.push_str(&counter(
        "cqc_http_responses_4xx_total",
        "HTTP responses with a 4xx status",
        0,
    ));
    expected.push_str(&counter(
        "cqc_serve_requests_total",
        "count requests handled by the serving core",
        0,
    ));
    expected.push_str(&counter(
        "cqc_serve_request_errors_total",
        "count requests answered with an error",
        0,
    ));
    expected.push_str(&counter(
        "cqc_shard_work_items_total",
        "work items (databases) evaluated across all requests",
        0,
    ));
    expected.push_str(&counter(
        "cqc_plan_cache_hits_total",
        "requests served from the prepared-plan cache",
        0,
    ));
    expected.push_str(&counter(
        "cqc_plan_cache_misses_total",
        "requests that prepared a new plan",
        0,
    ));
    expected.push_str(&counter(
        "cqc_plan_cache_evictions_total",
        "plans evicted by the LRU capacity bound",
        0,
    ));
    expected.push_str(&zeroed_histogram("cqc_request_latency_seconds"));
    expected.push_str(&counter(
        "cqc_oracle_calls_total",
        "EdgeFree oracle calls issued while answering count requests",
        0,
    ));
    expected.push_str(&counter(
        "cqc_colour_repetitions_total",
        "colour-coding repetitions budgeted across evaluated work items",
        0,
    ));
    expected.push_str(&zeroed_histogram("cqc_shard_merge_seconds"));
    expected.push_str(&gauge(
        "cqc_pool_width",
        "persistent worker-pool width (participating threads)",
        cqc_runtime::pool::global().width() as u64,
    ));
    expected.push_str(&gauge(
        "cqc_pool_queue_depth",
        "pool dispatches currently in flight",
        0,
    ));
    expected.push_str(&gauge(
        "cqc_active_connections",
        "TCP connections currently open",
        1,
    ));
    // admission-control series (event-driven rewrite): zero on an idle
    // server, appended after the historical prefix
    expected.push_str(&counter(
        "cqc_connections_rejected_total",
        "connections rejected at the admission cap with a load-shed response",
        0,
    ));
    expected.push_str(&counter(
        "cqc_requests_shed_total",
        "requests shed with an overload response (dispatch queue full)",
        0,
    ));
    expected.push_str(&counter(
        "cqc_connection_panics_total",
        "request handlers that panicked (answered with an internal error)",
        0,
    ));
    expected.push_str(&counter(
        "cqc_accept_errors_total",
        "transient accept failures backed off by the event loop",
        0,
    ));
    expected.push_str(&gauge(
        "cqc_dispatch_queue_depth",
        "requests queued or executing in the dispatcher",
        0,
    ));

    assert_eq!(got, expected, "idle /metrics drifted from the golden bytes");
}
