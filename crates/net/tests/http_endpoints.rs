//! Endpoint behaviour of the network front end over real loopback TCP:
//! health and metrics endpoints, count responses and HTTP status mapping,
//! keep-alive, protocol sniffing, streaming NDJSON, and graceful shutdown.

use cqc_net::{NetConfig, RunningServer};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

const COUNT_REQ: &str = r#"{"id": 1, "query": "ans(x) :- E(x, y), E(x, z), y != z", "dbs": ["universe 4\nrelation E 2\nE 0 1\nE 0 2\nE 3 1\nE 3 2\n"], "seed": 7, "method": "exact"}"#;

fn start() -> RunningServer {
    RunningServer::bind("127.0.0.1:0", NetConfig::default()).expect("bind ephemeral port")
}

/// One HTTP exchange on a fresh connection; returns (status, body).
fn http(server: &RunningServer, request: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.write_all(request.as_bytes()).unwrap();
    http_response(&mut BufReader::new(stream))
}

/// Read one fixed-length or chunked HTTP response; returns (status, body).
fn http_response<R: BufRead>(reader: &mut R) -> (u16, String) {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).unwrap();
    let status: u16 = status_line.split(' ').nth(1).unwrap().parse().unwrap();
    let mut content_length: Option<usize> = None;
    let mut chunked = false;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((k, v)) = line.split_once(':') {
            if k.eq_ignore_ascii_case("content-length") {
                content_length = Some(v.trim().parse().unwrap());
            }
            if k.eq_ignore_ascii_case("transfer-encoding") && v.trim() == "chunked" {
                chunked = true;
            }
        }
    }
    if chunked {
        let mut body = String::new();
        loop {
            let mut size_line = String::new();
            reader.read_line(&mut size_line).unwrap();
            let size = usize::from_str_radix(size_line.trim(), 16).unwrap();
            let mut chunk = vec![0u8; size + 2]; // chunk + CRLF
            reader.read_exact(&mut chunk).unwrap();
            if size == 0 {
                break;
            }
            body.push_str(std::str::from_utf8(&chunk[..size]).unwrap());
        }
        (status, body)
    } else {
        let mut body = vec![0u8; content_length.expect("length-delimited response")];
        reader.read_exact(&mut body).unwrap();
        (status, String::from_utf8(body).unwrap())
    }
}

fn post(path: &str, body: &str) -> String {
    format!(
        "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
}

#[test]
fn healthz_reports_ok() {
    let server = start();
    let (status, body) = http(&server, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(status, 200);
    assert_eq!(body, "{\"status\":\"ok\"}");
    server.shutdown();
}

#[test]
fn count_endpoint_answers_and_maps_errors_to_400() {
    let server = start();
    let (status, body) = http(&server, &post("/count", COUNT_REQ));
    assert_eq!(status, 200, "{body}");
    assert!(body.starts_with("{\"id\":1,"), "{body}");
    assert!(body.contains("\"estimate\":2,"), "{body}");
    assert!(body.contains("\"exact\":true"), "{body}");
    // an application-level error keeps the serve-protocol body, status 400
    let (status, body) = http(&server, &post("/count", "{\"id\": 2}"));
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("\"error\""), "{body}");
    assert!(body.starts_with("{\"id\":2,"), "{body}");
    server.shutdown();
}

#[test]
fn unknown_paths_and_methods_are_rejected() {
    let server = start();
    let (status, body) = http(&server, "GET /nope HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(status, 404);
    assert!(body.contains("no such endpoint"), "{body}");
    let (status, body) = http(&server, "GET /count HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(status, 405);
    assert!(body.contains("not allowed"), "{body}");
    let (status, _) = http(&server, "BAD-REQUEST-LINE\r\n\r\n");
    assert_eq!(status, 400);
    server.shutdown();
}

#[test]
fn keep_alive_serves_many_requests_on_one_connection() {
    let server = start();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let request = format!(
        "POST /count HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{COUNT_REQ}",
        COUNT_REQ.len()
    );
    let mut bodies = Vec::new();
    for _ in 0..3 {
        stream.write_all(request.as_bytes()).unwrap();
        let (status, body) = http_response(&mut reader);
        assert_eq!(status, 200);
        bodies.push(body);
    }
    assert_eq!(bodies[0], bodies[1]);
    assert_eq!(bodies[0], bodies[2]);
    server.shutdown();
}

#[test]
fn stream_endpoint_answers_ndjson_lines_in_order() {
    let server = start();
    let two_lines = format!(
        "{COUNT_REQ}\n{}\n",
        COUNT_REQ.replace("\"id\": 1", "\"id\": 2")
    );
    let (status, body) = http(&server, &post("/stream", &two_lines));
    assert_eq!(status, 200);
    let lines: Vec<&str> = body.lines().collect();
    assert_eq!(lines.len(), 2, "{body}");
    assert!(lines[0].starts_with("{\"id\":1,"), "{body}");
    assert!(lines[1].starts_with("{\"id\":2,"), "{body}");
    server.shutdown();
}

#[test]
fn raw_ndjson_protocol_is_sniffed_on_the_same_port() {
    let server = start();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    for id in [1u32, 2] {
        let line = COUNT_REQ.replace("\"id\": 1", &format!("\"id\": {id}"));
        stream.write_all(line.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        assert!(
            response.starts_with(&format!("{{\"id\":{id},")),
            "{response}"
        );
        assert!(response.contains("\"estimate\":2,"), "{response}");
    }
    // the NDJSON body equals the HTTP /count body byte for byte
    let (_, http_body) = http(&server, &post("/count", COUNT_REQ));
    stream.write_all(COUNT_REQ.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    let mut ndjson_body = String::new();
    reader.read_line(&mut ndjson_body).unwrap();
    assert_eq!(http_body, ndjson_body.trim_end(), "protocols must agree");
    server.shutdown();
}

#[test]
fn metrics_expose_request_cache_and_latency_counters() {
    let server = start();
    for _ in 0..2 {
        http(&server, &post("/count", COUNT_REQ));
    }
    http(&server, &post("/count", "{\"id\": 9}")); // error response
    let (status, text) = http(&server, "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(status, 200);
    for needle in [
        "cqc_serve_requests_total 3",
        "cqc_serve_request_errors_total 1",
        "cqc_plan_cache_hits_total 1",
        "cqc_plan_cache_misses_total 1",
        "cqc_plan_cache_evictions_total 0",
        "cqc_shard_work_items_total 2",
        "cqc_http_responses_2xx_total 2",
        "cqc_request_latency_seconds_count 3",
    ] {
        assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
    }
    assert!(server.served() == 3);
    server.shutdown();
}

#[test]
fn graceful_shutdown_stops_accepting_and_joins_connections() {
    let server = start();
    let addr = server.addr();
    // an idle keep-alive connection is open while we shut down
    let idle = TcpStream::connect(addr).unwrap();
    let served = server.shutdown();
    assert_eq!(served, 0);
    // the port no longer accepts (give the OS a moment to tear down)
    std::thread::sleep(std::time::Duration::from_millis(50));
    let refused = TcpStream::connect_timeout(&addr, std::time::Duration::from_millis(200));
    assert!(refused.is_err(), "listener still accepting after shutdown");
    drop(idle);
}

#[test]
fn shutdown_is_not_blocked_by_a_stalled_mid_request_peer() {
    let server = start();
    // a peer sends half a request line, then parks with the socket open
    let mut stalled = TcpStream::connect(server.addr()).unwrap();
    stalled.write_all(b"POST /count HT").unwrap();
    std::thread::sleep(std::time::Duration::from_millis(100));
    let started = std::time::Instant::now();
    let served = server.shutdown();
    assert_eq!(served, 0);
    assert!(
        started.elapsed() < std::time::Duration::from_secs(5),
        "shutdown hung on the stalled connection ({:?})",
        started.elapsed()
    );
    drop(stalled);
}

#[test]
fn http_1_0_stream_requests_get_a_length_delimited_body() {
    let server = start();
    let request = format!(
        "POST /stream HTTP/1.0\r\nHost: t\r\nContent-Length: {}\r\n\r\n{COUNT_REQ}",
        COUNT_REQ.len()
    );
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.write_all(request.as_bytes()).unwrap();
    let raw = {
        use std::io::Read as _;
        let mut buf = String::new();
        stream.read_to_string(&mut buf).unwrap();
        buf
    };
    assert!(!raw.contains("Transfer-Encoding"), "{raw}");
    assert!(raw.contains("Content-Length:"), "{raw}");
    assert!(raw.contains("\"estimate\":2,"), "{raw}");
    server.shutdown();
}

#[test]
fn excess_connections_beyond_the_cap_get_a_503_not_a_silent_close() {
    let server = RunningServer::bind(
        "127.0.0.1:0",
        NetConfig {
            max_connections: 1,
            ..NetConfig::default()
        },
    )
    .unwrap();
    // the first connection occupies the only slot (parked in the sniff)
    let held = TcpStream::connect(server.addr()).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(150));
    // the second is over the cap: instead of the old silent close it gets
    // a well-formed 503 with the pinned overload body, then the close
    let mut second = TcpStream::connect(server.addr()).unwrap();
    second
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let mut raw = String::new();
    use std::io::Read as _;
    second.read_to_string(&mut raw).unwrap();
    assert!(
        raw.starts_with("HTTP/1.1 503 Service Unavailable\r\n"),
        "{raw}"
    );
    assert!(raw.contains("Connection: close\r\n"), "{raw}");
    assert!(
        raw.ends_with("{\"id\":null,\"error\":\"server overloaded: connection limit reached\"}"),
        "{raw}"
    );
    assert_eq!(server.stats().connections_rejected, 1);
    drop(held);
    server.shutdown();
}

#[test]
fn idle_connections_expire_and_release_their_cap_slot() {
    let server = RunningServer::bind(
        "127.0.0.1:0",
        NetConfig {
            max_connections: 1,
            idle_timeout: std::time::Duration::from_millis(200),
            ..NetConfig::default()
        },
    )
    .unwrap();
    // an idle peer occupies the only slot…
    let mut idle = TcpStream::connect(server.addr()).unwrap();
    // …until the idle deadline expires it (observed as EOF client-side)
    let mut buf = [0u8; 1];
    use std::io::Read as _;
    idle.set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .unwrap();
    assert_eq!(idle.read(&mut buf).unwrap_or(0), 0, "idle peer expired");
    // give the server a moment to retire the connection thread, then the
    // slot is free again: a fresh connection is served normally
    std::thread::sleep(std::time::Duration::from_millis(150));
    let (status, body) = http(&server, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(status, 200, "{body}");
    server.shutdown();
}

#[test]
fn max_requests_triggers_self_shutdown() {
    let server = RunningServer::bind(
        "127.0.0.1:0",
        NetConfig {
            max_requests: Some(2),
            ..NetConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();
    let t = std::thread::spawn(move || {
        for _ in 0..2 {
            let mut stream = TcpStream::connect(addr).unwrap();
            let req = format!(
                "POST /count HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{COUNT_REQ}",
                COUNT_REQ.len()
            );
            stream.write_all(req.as_bytes()).unwrap();
            let (status, _) = http_response(&mut BufReader::new(stream));
            assert_eq!(status, 200);
        }
    });
    let served = server.wait();
    t.join().unwrap();
    assert_eq!(served, 2);
}
