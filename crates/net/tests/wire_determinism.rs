//! The wire-level determinism matrix (the acceptance test of the network
//! layer): for one seeded request mix, the transcript of response bodies
//! received over real loopback TCP must be byte-identical across
//!
//! * server worker-pool widths {1, 2, 8},
//! * client connection counts {1, 4},
//! * shard counts {1, 4},
//!
//! and across the two wire protocols (HTTP `POST /count` vs raw NDJSON).
//! Shard count is echoed in responses, so the transcript comparison embeds
//! it per request — requests pin `shards` explicitly, making the bytes
//! comparable across every axis.
//!
//! A second test drives a 1000-request mix through the full stack and
//! renders `BENCH_serve.json`, pinning the loadgen path end to end.

use cqc_net::loadgen::{bench_json, run_against, LoadgenOptions, Protocol};
use cqc_net::{NetConfig, RunningServer};
use cqc_runtime::pool::set_worker_cap;

/// Run one loadgen configuration against a fresh server, returning the
/// id-ordered transcript.
fn transcript(options: &LoadgenOptions) -> String {
    let server = RunningServer::bind("127.0.0.1:0", NetConfig::default()).expect("bind");
    let report = run_against(server.addr(), options).expect("loadgen run");
    server.shutdown();
    assert_eq!(
        report.transcript.lines().count(),
        options.requests,
        "every request answered"
    );
    assert_eq!(report.errors, 0, "healthy mix has no error responses");
    report.transcript
}

#[test]
fn transcripts_are_byte_identical_across_pools_connections_and_shards() {
    let base = LoadgenOptions {
        requests: 12,
        connections: 1,
        seed: 0x5EED,
        shards: Some(1),
        method: None, // auto: the approximation engines, where
        // scheduling-dependent RNG use would show
        accuracy: None,
        protocol: Protocol::Http,
        suite: None,
    };
    let reference = transcript(&base);
    // the mix exercises estimates (the `estimate_bits` member pins f64 bits)
    assert!(reference.contains("\"estimate_bits\""), "{reference}");

    let strip_shards = |t: &str| {
        t.replace("\"shards\":1", "\"shards\":N")
            .replace("\"shards\":4", "\"shards\":N")
    };
    let before = std::time::Instant::now();
    for pool_width in [1usize, 2, 8] {
        set_worker_cap(pool_width);
        for connections in [1usize, 4] {
            for shards in [1usize, 4] {
                let options = LoadgenOptions {
                    connections,
                    shards: Some(shards),
                    ..base.clone()
                };
                let got = transcript(&options);
                assert_eq!(
                    strip_shards(&got),
                    strip_shards(&reference),
                    "bytes drifted at pool={pool_width} connections={connections} shards={shards}"
                );
            }
        }
    }
    set_worker_cap(0); // restore auto for other tests in this process
    eprintln!("matrix wall: {:?}", before.elapsed());

    // protocol axis: raw NDJSON over TCP returns the same bytes as HTTP
    let ndjson = transcript(&LoadgenOptions {
        connections: 4,
        protocol: Protocol::Ndjson,
        ..base.clone()
    });
    assert_eq!(ndjson, reference, "NDJSON and HTTP transcripts must agree");
}

#[test]
fn suite_mixes_are_deterministic_on_the_wire_for_every_class() {
    // the enumerated suites are loadgen sources too: same seed, same
    // class → byte-identical transcripts across connections and protocols
    for class in cqc_workloads::ALL_CLASSES {
        let base = LoadgenOptions {
            requests: 6,
            connections: 1,
            seed: 0x517E,
            shards: None,
            // exact keeps the matrix affordable in debug builds; the
            // suite source and wire path are what's under test
            method: Some("exact".to_string()),
            accuracy: None,
            protocol: Protocol::Http,
            suite: Some(class),
        };
        let reference = transcript(&base);
        let other = transcript(&LoadgenOptions {
            connections: 3,
            protocol: Protocol::Ndjson,
            ..base.clone()
        });
        assert_eq!(reference, other, "suite transcript drifted for {class:?}");
        // the suite is echoed into the bench report
        let server = RunningServer::bind("127.0.0.1:0", NetConfig::default()).expect("bind");
        let report = run_against(server.addr(), &base).expect("suite run");
        server.shutdown();
        let doc = cqc_serve::json::parse(&bench_json(&report)).expect("bench json parses");
        assert_eq!(
            doc.get("suite").and_then(|s| s.as_str()),
            Some(cqc_workloads::class_name(class))
        );
    }
}

#[test]
fn a_1k_request_loadgen_run_completes_and_emits_bench_json() {
    let server = RunningServer::bind("127.0.0.1:0", NetConfig::default()).expect("bind");
    let options = LoadgenOptions {
        requests: 1000,
        connections: 8,
        seed: 0xBE9C4,
        shards: None,
        // exact keeps 1k requests affordable in debug builds; the wire
        // path is identical to the approximation methods
        method: Some("exact".to_string()),
        accuracy: None,
        protocol: Protocol::Http,
        suite: None,
    };
    let report = run_against(server.addr(), &options).expect("1k loadgen run");
    server.shutdown();
    assert_eq!(report.transcript.lines().count(), 1000);
    assert_eq!(report.errors, 0);
    assert!(report.throughput_rps > 0.0);
    assert!(report.p50_ms <= report.p95_ms && report.p95_ms <= report.p99_ms);

    // BENCH_serve.json renders, parses, and echoes the run
    let text = bench_json(&report);
    let path = std::env::temp_dir().join(format!("BENCH_serve-{}.json", std::process::id()));
    std::fs::write(&path, &text).expect("write BENCH_serve.json");
    let back = cqc_serve::json::parse(&std::fs::read_to_string(&path).unwrap()).expect("parses");
    assert_eq!(back.get("requests").and_then(|v| v.as_u64()), Some(1000));
    assert_eq!(
        back.get("responses_with_error").and_then(|v| v.as_u64()),
        Some(0)
    );
    assert!(back.get("latency_ms").and_then(|l| l.get("p99")).is_some());
    std::fs::remove_file(&path).ok();
}
