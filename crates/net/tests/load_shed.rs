//! Admission control over real loopback TCP: over-cap connections and
//! queue-full requests get **well-formed, pinned overload bytes** — never a
//! silent close — the shed counters advance, and a client that retries
//! after the overload clears succeeds on the same connection.
//!
//! Also drives the connection-scaling sweep end to end at small counts:
//! the transcripts of every point must be byte-identical (determinism
//! under concurrency — the curve only measures, never changes, a byte).

use cqc_net::loadgen::{run_scaling, scaling_bench_json, LoadgenOptions, Protocol};
use cqc_net::{NetConfig, RunningServer};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

const COUNT_REQ: &str = r#"{"id": 1, "query": "ans(x) :- E(x, y), E(x, z), y != z", "dbs": ["universe 4\nrelation E 2\nE 0 1\nE 0 2\nE 3 1\nE 3 2\n"], "seed": 7, "method": "exact"}"#;

/// The pinned overload body: identical JSON across both protocols.
const CAP_BODY: &str = "{\"id\":null,\"error\":\"server overloaded: connection limit reached\"}";
const QUEUE_BODY: &str = "{\"id\":null,\"error\":\"server overloaded: dispatch queue full\"}";

/// Read one fixed-length or chunked HTTP response; returns
/// (status, headers, body).
fn read_response<R: BufRead>(reader: &mut R) -> (u16, String, String) {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).unwrap();
    let status: u16 = status_line.split(' ').nth(1).unwrap().parse().unwrap();
    let mut headers = String::new();
    let mut content_length = 0usize;
    let mut chunked = false;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        if line.trim_end().is_empty() {
            break;
        }
        if let Some((k, v)) = line.split_once(':') {
            if k.eq_ignore_ascii_case("content-length") {
                content_length = v.trim().parse().unwrap();
            }
            if k.eq_ignore_ascii_case("transfer-encoding") && v.trim() == "chunked" {
                chunked = true;
            }
        }
        headers.push_str(&line);
    }
    let body = if chunked {
        let mut body = String::new();
        loop {
            let mut size_line = String::new();
            reader.read_line(&mut size_line).unwrap();
            let size = usize::from_str_radix(size_line.trim(), 16).unwrap();
            let mut chunk = vec![0u8; size + 2]; // chunk + CRLF
            reader.read_exact(&mut chunk).unwrap();
            if size == 0 {
                break;
            }
            body.push_str(std::str::from_utf8(&chunk[..size]).unwrap());
        }
        body
    } else {
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).unwrap();
        String::from_utf8(body).unwrap()
    };
    (status, headers, body)
}

/// Scrape `/metrics` once over a fresh connection (served inline on the
/// event thread, so it works even while the dispatch queue is full).
fn scrape(server: &RunningServer) -> String {
    let stream = TcpStream::connect(server.addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    writer
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
        .unwrap();
    read_response(&mut BufReader::new(stream)).2
}

#[test]
fn over_cap_ndjson_connections_get_the_pinned_error_line_then_close() {
    let server = RunningServer::bind(
        "127.0.0.1:0",
        NetConfig {
            max_connections: 1,
            ..NetConfig::default()
        },
    )
    .unwrap();
    // occupy the only slot
    let held = TcpStream::connect(server.addr()).unwrap();
    std::thread::sleep(Duration::from_millis(150));
    // an NDJSON peer over the cap gets the pinned error line, then EOF
    let mut second = TcpStream::connect(server.addr()).unwrap();
    second.write_all(COUNT_REQ.as_bytes()).unwrap();
    second.write_all(b"\n").unwrap();
    let mut raw = String::new();
    second.read_to_string(&mut raw).unwrap();
    assert_eq!(raw, format!("{CAP_BODY}\n"));
    assert_eq!(server.stats().connections_rejected, 1);
    // once the held slot frees, a new connection serves normally
    drop(held);
    std::thread::sleep(Duration::from_millis(150));
    let mut third = TcpStream::connect(server.addr()).unwrap();
    third.write_all(COUNT_REQ.as_bytes()).unwrap();
    third.write_all(b"\n").unwrap();
    let mut line = String::new();
    BufReader::new(&third).read_line(&mut line).unwrap();
    assert!(line.contains("\"estimate\":2,"), "{line}");
    server.shutdown();
}

#[test]
fn queue_full_requests_shed_with_identical_bytes_on_both_protocols_then_recover() {
    let server = RunningServer::bind(
        "127.0.0.1:0",
        NetConfig {
            dispatch_queue_limit: 1,
            dispatch_workers: 2,
            ..NetConfig::default()
        },
    )
    .unwrap();

    // Occupy the whole dispatch budget (limit 1) with one long-running
    // stream job: many exact-count lines, each a full serve pipeline.
    let slow_body: String = format!("{COUNT_REQ}\n").repeat(2000);
    let mut slow = TcpStream::connect(server.addr()).unwrap();
    write!(
        slow,
        "POST /stream HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{slow_body}",
        slow_body.len()
    )
    .unwrap();
    // wait until the job is actually in flight (scraped via the inline
    // /metrics endpoint, which bypasses the dispatcher)
    let mut waited = 0;
    while scrape(&server).contains("cqc_dispatch_queue_depth 0") && waited < 100 {
        std::thread::sleep(Duration::from_millis(10));
        waited += 1;
    }
    assert!(waited < 100, "stream job never reached the dispatcher");

    // HTTP shed: the pinned 503 with the queue-full body, keep-alive
    let mut http = TcpStream::connect(server.addr()).unwrap();
    write!(
        http,
        "POST /count HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{COUNT_REQ}",
        COUNT_REQ.len()
    )
    .unwrap();
    let mut http_reader = BufReader::new(http.try_clone().unwrap());
    let (status, headers, body) = read_response(&mut http_reader);
    assert_eq!(status, 503);
    assert_eq!(body, QUEUE_BODY);
    assert!(
        !headers.contains("Connection: close"),
        "queue-full shed must keep the connection alive:\n{headers}"
    );

    // NDJSON shed: the identical JSON body as an error line, stay open
    let mut ndjson = TcpStream::connect(server.addr()).unwrap();
    ndjson.write_all(COUNT_REQ.as_bytes()).unwrap();
    ndjson.write_all(b"\n").unwrap();
    let mut ndjson_reader = BufReader::new(ndjson.try_clone().unwrap());
    let mut line = String::new();
    ndjson_reader.read_line(&mut line).unwrap();
    assert_eq!(line, format!("{QUEUE_BODY}\n"));

    assert!(server.stats().requests_shed >= 2, "{:?}", server.stats());

    // Drain the slow response; the queue is now free.
    let (status, _, slow_out) = read_response(&mut BufReader::new(slow));
    assert_eq!(status, 200);
    assert_eq!(slow_out.matches("\"estimate\":2,").count(), 2000);

    // Recovery on the *same* connections that were shed.
    write!(
        http,
        "POST /count HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{COUNT_REQ}",
        COUNT_REQ.len()
    )
    .unwrap();
    let (status, _, body) = read_response(&mut http_reader);
    assert_eq!(status, 200);
    assert!(body.contains("\"estimate\":2,"), "{body}");
    ndjson.write_all(COUNT_REQ.as_bytes()).unwrap();
    ndjson.write_all(b"\n").unwrap();
    let mut line = String::new();
    ndjson_reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"estimate\":2,"), "{line}");

    server.shutdown();
}

#[test]
fn scaling_sweep_produces_identical_transcripts_across_connection_counts() {
    let server = RunningServer::bind("127.0.0.1:0", NetConfig::default()).unwrap();
    let base = LoadgenOptions {
        requests: 32,
        seed: 11,
        method: Some("exact".to_string()),
        protocol: Protocol::Http,
        ..LoadgenOptions::default()
    };
    let report = run_scaling(server.addr(), &base, &[2, 8]).unwrap();
    assert_eq!(report.points.len(), 2);
    assert!(report.transcripts_identical, "transcripts diverged");
    assert_eq!(report.points[0].report.errors, 0);
    let json = scaling_bench_json(&report);
    let v = cqc_serve::json::parse(&json).unwrap();
    assert_eq!(
        v.get("bench").and_then(|b| b.as_str()),
        Some("serve_scaling")
    );
    assert!(json.contains("\"transcripts_identical\":true"), "{json}");
    server.shutdown();
}
