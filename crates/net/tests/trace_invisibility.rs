//! The observability acceptance test: tracing must be provably invisible
//! on the wire. For a seeded request mix, the transcript served with the
//! tracer **enabled** must be byte-identical to the transcript served with
//! it **disabled**, across server pool widths {1, 2, 8}, shard counts
//! {1, 4}, and both wire protocols (HTTP `POST /count` vs raw NDJSON).
//!
//! The same test pins the request-correlation echoes, which are pure
//! functions of the request bytes and therefore identical whether the
//! tracer is on or off:
//!
//! * an NDJSON request carrying a `"trace"` member gets it echoed back in
//!   the response (success and error alike);
//! * an HTTP `POST /count` carrying a `traceparent` header gets it echoed
//!   as a `Traceparent` response header.
//!
//! The same obligation extends to the rest of the observability stack:
//! with the wide-event request log (file sink attached), the flight
//! recorder, **and** a concurrent client hammering the `/debug/*`
//! endpoints throughout the run, the transcript must still match the
//! everything-off transcript byte for byte, on both protocols.
//!
//! Everything lives in one `#[test]` because the tracer and the worker cap
//! are process-global: a single body sequences them deterministically.

use cqc_net::loadgen::{run_against, LoadgenOptions, Protocol};
use cqc_net::{NetConfig, RunningServer};
use cqc_runtime::pool::set_worker_cap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const COUNT_REQ: &str = r#"{"id": 1, "query": "ans(x) :- E(x, y), E(x, z), y != z", "dbs": ["universe 4\nrelation E 2\nE 0 1\nE 0 2\nE 3 1\nE 3 2\n"], "seed": 7, "method": "exact"}"#;

/// Run one loadgen configuration against a fresh server with the tracer
/// forced to `traced`; returns the id-ordered transcript.
fn transcript(options: &LoadgenOptions, traced: bool) -> String {
    cqc_obs::trace::set_enabled(traced);
    let server = RunningServer::bind("127.0.0.1:0", NetConfig::default()).expect("bind");
    let report = run_against(server.addr(), options).expect("loadgen run");
    server.shutdown();
    cqc_obs::trace::set_enabled(false);
    assert_eq!(report.transcript.lines().count(), options.requests);
    assert_eq!(report.errors, 0, "healthy mix has no error responses");
    report.transcript
}

#[test]
fn tracing_never_changes_a_byte_on_the_wire() {
    let base = LoadgenOptions {
        requests: 12,
        connections: 2,
        seed: 0x0B5EED,
        shards: Some(1),
        method: None, // auto: the approximation engines, where an
        // observability effect on RNG or scheduling would surface
        accuracy: None,
        protocol: Protocol::Http,
        suite: None,
    };
    cqc_obs::trace::set_enabled(false);
    let _ = cqc_obs::trace::drain(); // isolate from earlier activity

    for pool_width in [1usize, 2, 8] {
        set_worker_cap(pool_width);
        for shards in [1usize, 4] {
            for protocol in [Protocol::Http, Protocol::Ndjson] {
                let options = LoadgenOptions {
                    shards: Some(shards),
                    protocol,
                    ..base.clone()
                };
                let off = transcript(&options, false);
                assert_eq!(
                    cqc_obs::trace::drain().events.len(),
                    0,
                    "a disabled tracer must record nothing"
                );
                let on = transcript(&options, true);
                let trace = cqc_obs::trace::drain();
                assert_eq!(
                    off, on,
                    "tracing changed wire bytes at pool={pool_width} shards={shards} {protocol:?}"
                );
                assert!(
                    !trace.events.is_empty(),
                    "the enabled tracer saw no events — the invariant test is vacuous"
                );
                let ndjson = trace.to_ndjson();
                assert!(ndjson.contains("\"name\":\"request\""), "{ndjson}");
                assert!(ndjson.contains("\"name\":\"work_item\""), "{ndjson}");
            }
        }
    }
    // The whole stack on — tracer, wide-event log with a file sink, flight
    // recorder — plus a concurrent /debug scraper: still not a byte of
    // difference on the wire, on either protocol.
    set_worker_cap(2);
    for protocol in [Protocol::Http, Protocol::Ndjson] {
        let options = LoadgenOptions {
            shards: Some(2),
            protocol,
            ..base.clone()
        };
        let off = transcript(&options, false);

        cqc_obs::trace::set_enabled(true);
        cqc_obs::wide::set_enabled(true);
        cqc_obs::flight::set_enabled(true);
        let log_path = std::env::temp_dir().join(format!(
            "cqc-invis-widelog-{}-{protocol:?}.ndjson",
            std::process::id()
        ));
        let server = RunningServer::bind(
            "127.0.0.1:0",
            NetConfig {
                request_log: Some(log_path.clone()),
                ..NetConfig::default()
            },
        )
        .expect("bind");
        let addr = server.addr();
        let stop = Arc::new(AtomicBool::new(false));
        let scraper = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut scrapes = 0u32;
                while !stop.load(Ordering::Relaxed) {
                    for path in ["/debug/requests", "/debug/flight", "/debug/loop"] {
                        let mut stream = TcpStream::connect(addr).expect("scraper connect");
                        stream
                            .write_all(
                                format!(
                                    "GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
                                )
                                .as_bytes(),
                            )
                            .expect("scraper write");
                        let mut raw = String::new();
                        stream.read_to_string(&mut raw).expect("scraper read");
                        assert!(raw.starts_with("HTTP/1.1 200"), "{path}: {raw}");
                        scrapes += 1;
                    }
                }
                scrapes
            })
        };
        let report = run_against(addr, &options).expect("loadgen run");
        stop.store(true, Ordering::Relaxed);
        let scrapes = scraper.join().expect("scraper thread");
        server.shutdown();
        cqc_obs::trace::set_enabled(false);
        cqc_obs::wide::set_enabled(false);
        cqc_obs::flight::set_enabled(false);
        let _ = cqc_obs::trace::drain();
        cqc_obs::flight::reset();

        assert!(scrapes > 0, "the debug scraper never got a response in");
        assert_eq!(
            off, report.transcript,
            "wide log + flight recorder + /debug scraping changed wire bytes ({protocol:?})"
        );
        // the request log captured exactly one wide record per request,
        // and none for the scraper's own /debug traffic
        let log_text = std::fs::read_to_string(&log_path).expect("request log written");
        let wide_lines = log_text
            .lines()
            .filter(|l| l.contains("\"type\":\"wide\""))
            .count();
        assert_eq!(wide_lines, options.requests, "{log_text}");
        assert!(!log_text.contains("\"endpoint\":\"debug"), "{log_text}");
        std::fs::remove_file(&log_path).ok();
    }
    set_worker_cap(0); // restore auto for other tests in this process

    // correlation echoes: byte-identical with the tracer on and off
    for traced in [false, true] {
        cqc_obs::trace::set_enabled(traced);
        let server = RunningServer::bind("127.0.0.1:0", NetConfig::default()).expect("bind");

        // NDJSON: the `"trace"` member round-trips on success and error
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let tagged = COUNT_REQ.replace("\"id\": 1", "\"id\": 1, \"trace\": \"00-feedc0de-01\"");
        stream.write_all(tagged.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        assert!(response.contains("\"estimate\":2,"), "{response}");
        assert!(
            response.contains("\"trace\":\"00-feedc0de-01\""),
            "{response}"
        );
        let bad = r#"{"id": 2, "trace": "00-feedc0de-02"}"#;
        stream.write_all(bad.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        assert!(response.contains("\"error\""), "{response}");
        assert!(
            response.contains("\"trace\":\"00-feedc0de-02\""),
            "{response}"
        );
        drop(reader);
        drop(stream);

        // HTTP: the `traceparent` header echoes as a response header
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let request = format!(
            "POST /count HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\
             traceparent: 00-feedc0de-03\r\nConnection: close\r\n\r\n{COUNT_REQ}",
            COUNT_REQ.len()
        );
        stream.write_all(request.as_bytes()).unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 200"), "{raw}");
        assert!(raw.contains("\r\nTraceparent: 00-feedc0de-03\r\n"), "{raw}");
        // an un-tagged request gets no Traceparent header
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let request = format!(
            "POST /count HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{COUNT_REQ}",
            COUNT_REQ.len()
        );
        stream.write_all(request.as_bytes()).unwrap();
        let mut plain = String::new();
        stream.read_to_string(&mut plain).unwrap();
        assert!(!plain.contains("Traceparent:"), "{plain}");

        server.shutdown();
        cqc_obs::trace::set_enabled(false);
        let _ = cqc_obs::trace::drain();
    }
}
