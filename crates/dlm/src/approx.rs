//! `(ε, δ)`-approximate edge counting in the `EdgeFree` oracle model.
//!
//! This is the workhorse behind the paper's Theorem 17 usage: Lemma 22 feeds
//! it the answer hypergraph `H(ϕ, D)` through a colour-coding oracle, and the
//! result is an `(ε, δ)`-approximation of `|Ans(ϕ, D)|`.
//!
//! Algorithm (see DESIGN.md, substitutions, for the relation to the original
//! Dell–Lapinskas–Meeks procedure):
//!
//! 1. Try to count the edges **exactly** by recursive halving with an oracle
//!    budget proportional to `ε⁻²`; if the region is sparse this terminates
//!    and the answer is exact (no approximation error at all).
//! 2. Otherwise perform a doubling search over a vertex sampling rate
//!    `q = 2⁻ʲ`: each class keeps every vertex independently with
//!    probability `q`, so every hyperedge survives with probability exactly
//!    `q^ℓ` (one vertex per class — ℓ-partiteness makes the estimator
//!    unbiased). The rate is lowered until the sub-sampled region can be
//!    counted exactly within budget and yields at least `threshold` edges.
//! 3. With the rate fixed, take `groups × group_size` independent
//!    sub-samples, average within groups and return the median of the group
//!    means (median-of-means amplification for the `δ` guarantee).

use crate::exact::exact_edge_count_with_budget;
use crate::oracle::{full_parts, EdgeFreeOracle};
use rand::Rng;
use std::collections::BTreeSet;

/// Tuning parameters of the approximate counter.
#[derive(Debug, Clone)]
pub struct DlmConfig {
    /// Target relative error `ε ∈ (0, 1)`.
    pub epsilon: f64,
    /// Target failure probability `δ ∈ (0, 1)`.
    pub delta: f64,
    /// Base number of surviving edges aimed for in each sub-sample
    /// (scaled by `ε⁻²`).
    pub threshold_factor: f64,
    /// Hard cap on the number of independent sub-samples per group.
    pub max_group_size: usize,
}

impl DlmConfig {
    /// A configuration with the given accuracy parameters and default tuning.
    pub fn new(epsilon: f64, delta: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "ε must be in (0,1)");
        assert!(delta > 0.0 && delta < 1.0, "δ must be in (0,1)");
        DlmConfig {
            epsilon,
            delta,
            threshold_factor: 16.0,
            max_group_size: 24,
        }
    }

    /// The per-sample target count `T = threshold_factor / ε²`, capped to
    /// avoid pathological budgets.
    fn threshold(&self) -> u64 {
        ((self.threshold_factor / (self.epsilon * self.epsilon)).ceil() as u64).clamp(16, 200_000)
    }

    /// Number of median groups `Θ(log 1/δ)`.
    fn groups(&self) -> usize {
        ((6.0 * (1.0 / self.delta).ln()).ceil() as usize).clamp(3, 41) | 1 // odd
    }

    /// Sub-samples averaged within each group.
    fn group_size(&self) -> usize {
        ((4.0 / (self.epsilon * self.epsilon)).ceil() as usize).clamp(1, self.max_group_size)
    }
}

/// How the returned estimate was obtained.
#[derive(Debug, Clone, PartialEq)]
pub enum ApproxMethod {
    /// The region was sparse enough to count exactly — the estimate is exact.
    Exact,
    /// Vertex sub-sampling at rate `q` with `samples` independent
    /// sub-samples.
    Sampled {
        /// The per-vertex keep probability used.
        q: f64,
        /// Total number of sub-samples drawn.
        samples: usize,
    },
}

/// The result of [`approx_edge_count`].
#[derive(Debug, Clone, PartialEq)]
pub struct ApproxCountResult {
    /// The `(ε, δ)`-estimate of `|E(H)|`.
    pub estimate: f64,
    /// How it was computed.
    pub method: ApproxMethod,
    /// Total `EdgeFree` oracle calls consumed.
    pub oracle_calls: u64,
}

/// Compute an `(ε, δ)`-approximation of the number of hyperedges of the
/// oracle's ℓ-partite ℓ-uniform hypergraph, using only `EdgeFree` queries.
pub fn approx_edge_count<O: EdgeFreeOracle, R: Rng>(
    oracle: &mut O,
    config: &DlmConfig,
    rng: &mut R,
) -> ApproxCountResult {
    let calls_before = oracle.calls();
    let ell = oracle.num_classes();
    let full = full_parts(oracle);

    // Handle ℓ = 0 (Boolean queries): at most one (empty) edge.
    if ell == 0 {
        let has_edge = !oracle.edge_free(&full);
        return ApproxCountResult {
            estimate: if has_edge { 1.0 } else { 0.0 },
            method: ApproxMethod::Exact,
            oracle_calls: oracle.calls() - calls_before,
        };
    }

    let threshold = config.threshold();
    let max_log_n = full
        .iter()
        .map(|p| (p.len().max(2) as f64).log2().ceil() as u64)
        .max()
        .unwrap_or(1);
    // Budget allowing exact counting of up to ~4·threshold edges.
    let exact_budget = 4 * threshold * (ell as u64) * (max_log_n + 2) + 64;

    // Phase 1: try exact counting.
    if let Some(exact) = exact_edge_count_with_budget(oracle, &full, exact_budget) {
        if exact <= 2 * threshold {
            return ApproxCountResult {
                estimate: exact as f64,
                method: ApproxMethod::Exact,
                oracle_calls: oracle.calls() - calls_before,
            };
        }
    }

    // Phase 2: doubling search for a workable sampling rate q = 2^{-j}.
    let mut q = 0.5f64;
    let min_q = 1.0 / (full.iter().map(|p| p.len() as f64).product::<f64>()).max(2.0);
    let chosen_q = loop {
        let parts = subsample(&full, q, rng);
        match exact_edge_count_with_budget(oracle, &parts, exact_budget) {
            Some(count) if count <= 4 * threshold => break q,
            _ => {
                q /= 2.0;
                if q < min_q {
                    break q.max(min_q);
                }
            }
        }
    };

    // Phase 3: median of means at the chosen rate.
    let groups = config.groups();
    let group_size = config.group_size();
    let scale = chosen_q.powi(ell as i32);
    let mut group_means = Vec::with_capacity(groups);
    for _ in 0..groups {
        let mut sum = 0.0f64;
        let mut used = 0usize;
        for _ in 0..group_size {
            let parts = subsample(&full, chosen_q, rng);
            // A sub-sample that exceeds the budget is extremely dense; count
            // it with a much larger budget rather than discarding it (which
            // would bias the estimator downwards).
            let count = exact_edge_count_with_budget(oracle, &parts, exact_budget * 16)
                .unwrap_or(4 * threshold * 16);
            sum += count as f64 / scale;
            used += 1;
        }
        group_means.push(sum / used as f64);
    }
    group_means.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let estimate = group_means[group_means.len() / 2];

    ApproxCountResult {
        estimate,
        method: ApproxMethod::Sampled {
            q: chosen_q,
            samples: groups * group_size,
        },
        oracle_calls: oracle.calls() - calls_before,
    }
}

/// Keep every vertex of every class independently with probability `q`.
fn subsample<R: Rng>(full: &[BTreeSet<usize>], q: f64, rng: &mut R) -> Vec<BTreeSet<usize>> {
    full.iter()
        .map(|p| p.iter().copied().filter(|_| rng.gen::<f64>() < q).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explicit::ExplicitHypergraph;
    use crate::oracle::CountingOracle;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run(h: ExplicitHypergraph, eps: f64, delta: f64, seed: u64) -> ApproxCountResult {
        let mut oracle = CountingOracle::new(h);
        let config = DlmConfig::new(eps, delta);
        let mut rng = StdRng::seed_from_u64(seed);
        approx_edge_count(&mut oracle, &config, &mut rng)
    }

    #[test]
    fn empty_hypergraph_is_exact_zero() {
        let h = ExplicitHypergraph::new(vec![50, 50], vec![]);
        let r = run(h, 0.5, 0.1, 1);
        assert_eq!(r.estimate, 0.0);
        assert_eq!(r.method, ApproxMethod::Exact);
    }

    #[test]
    fn sparse_hypergraphs_are_counted_exactly() {
        let edges: Vec<Vec<usize>> = (0..10).map(|i| vec![i, (i * 3) % 40]).collect();
        let expected = edges.len() as f64;
        let h = ExplicitHypergraph::new(vec![40, 40], edges);
        let r = run(h, 0.3, 0.05, 2);
        assert_eq!(r.estimate, expected);
        assert_eq!(r.method, ApproxMethod::Exact);
    }

    #[test]
    fn dense_hypergraph_estimate_is_close() {
        // complete bipartite 30×30 = 900 edges; with ε = 0.25 the estimate
        // must land within 25 % (we allow a small extra slack for the
        // heuristic variance control; the seed is fixed so this is
        // deterministic).
        let h = ExplicitHypergraph::complete(vec![30, 30]);
        let r = run(h, 0.25, 0.1, 3);
        let truth = 900.0;
        assert!(
            (r.estimate - truth).abs() <= 0.3 * truth,
            "estimate {} too far from {}",
            r.estimate,
            truth
        );
    }

    #[test]
    fn half_dense_hypergraph_estimate_is_close() {
        // edges: all pairs (i, j) with (i + j) even over 30×30 = 450 edges
        let edges: Vec<Vec<usize>> = (0..30)
            .flat_map(|i| {
                (0..30)
                    .filter(move |j| (i + j) % 2 == 0)
                    .map(move |j| vec![i, j])
            })
            .collect();
        let truth = edges.len() as f64;
        let h = ExplicitHypergraph::new(vec![30, 30], edges);
        let r = run(h, 0.25, 0.1, 4);
        assert!(
            (r.estimate - truth).abs() <= 0.3 * truth,
            "estimate {} too far from {}",
            r.estimate,
            truth
        );
    }

    #[test]
    fn three_uniform_dense_hypergraph() {
        let h = ExplicitHypergraph::complete(vec![9, 9, 9]); // 729 edges
        let r = run(h, 0.3, 0.1, 5);
        let truth = 729.0;
        assert!(
            (r.estimate - truth).abs() <= 0.35 * truth,
            "estimate {} too far from {}",
            r.estimate,
            truth
        );
    }

    #[test]
    fn zero_classes() {
        let h = ExplicitHypergraph::complete(vec![]);
        let r = run(h, 0.5, 0.1, 6);
        assert_eq!(r.estimate, 1.0);
    }

    #[test]
    fn oracle_calls_depend_on_accuracy_not_edge_count() {
        // The whole point of the framework: the oracle-call budget is governed
        // by ε, δ, ℓ and log N — not by |E(H)|. Doubling the class sizes
        // multiplies the number of edges by 4 but must not multiply the call
        // count by anything close to that.
        // The sampling rate is a power of two, so the per-sample region size
        // (and hence the call count) carries an inherent granularity of up to
        // 2^ℓ = 4×; the assertion allows for that but rules out anything close
        // to the 16× growth that per-edge counting would exhibit if the class
        // sizes quadrupled the edge count twice over.
        let small = run(ExplicitHypergraph::complete(vec![30, 30]), 0.5, 0.25, 7);
        let large = run(ExplicitHypergraph::complete(vec![60, 60]), 0.5, 0.25, 8);
        assert!(matches!(large.method, ApproxMethod::Sampled { .. }));
        assert!(
            (large.oracle_calls as f64) < 4.5 * (small.oracle_calls as f64),
            "calls grew with edge count: {} vs {}",
            small.oracle_calls,
            large.oracle_calls
        );
    }

    #[test]
    fn config_validation() {
        let c = DlmConfig::new(0.5, 0.5);
        assert!(c.threshold() >= 16);
        assert!(c.groups() % 2 == 1);
        assert!(c.group_size() >= 1);
    }

    #[test]
    #[should_panic(expected = "ε must be in (0,1)")]
    fn invalid_epsilon_panics() {
        DlmConfig::new(1.5, 0.1);
    }
}
