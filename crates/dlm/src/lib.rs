//! # cqc-dlm — approximate edge counting with an `EdgeFree` decision oracle
//!
//! This crate implements the framework of Dell, Lapinskas and Meeks
//! ("Approximately counting and sampling small witnesses using a colourful
//! decision oracle", SODA 2020) in the form used by the paper's Theorem 17:
//! an algorithm that, given an `ℓ`-partite `ℓ`-uniform hypergraph `H` about
//! which it can only ask *"does the induced sub-hypergraph
//! `H[V₁, …, V_ℓ]` contain a hyperedge?"*, computes an `(ε, δ)`-approximation
//! of `|E(H)|`.
//!
//! The concrete algorithm differs from the one in the DLM paper (see
//! DESIGN.md, substitutions) but lives in exactly the same access model:
//!
//! * [`EdgeFreeOracle`] — the oracle interface (class-aligned ℓ-partite
//!   queries), plus [`PermutationOracle`] which lifts a class-aligned oracle
//!   to arbitrary ℓ-partite vertex subsets via the `ℓ!`-permutation argument
//!   of Lemma 22.
//! * [`exact_edge_count`] — exact counting by recursive halving, using
//!   `O(|E| · ℓ · log N)` oracle calls; used below a threshold and on its own
//!   for ground truth.
//! * [`approx_edge_count`] — the `(ε, δ)` approximation: exact counting below
//!   a threshold, otherwise vertex subsampling with a doubling search for the
//!   sampling rate and median-of-means amplification.
//! * [`sample_edge`] — an (approximately) uniform hyperedge sampler by
//!   self-reducible descent, the ingredient for the sampling extension of
//!   Section 6.
//! * [`ExplicitHypergraph`] — an explicit ℓ-partite hypergraph with a built-in
//!   oracle, used to test the framework independently of query answering.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod approx;
pub mod exact;
pub mod explicit;
pub mod oracle;
pub mod sampler;

pub use approx::{approx_edge_count, ApproxCountResult, ApproxMethod, DlmConfig};
pub use exact::{exact_edge_count, exact_edge_count_with_budget};
pub use explicit::ExplicitHypergraph;
pub use oracle::{CountingOracle, EdgeFreeOracle, PermutationOracle};
pub use sampler::sample_edge;
