//! Exact edge counting by recursive halving, using only `EdgeFree` queries.

use crate::oracle::{full_parts, EdgeFreeOracle};
use std::collections::BTreeSet;

/// Count the hyperedges of the oracle's hypergraph exactly, using only
/// `EdgeFree` queries on class-aligned ℓ-partite subsets.
///
/// The strategy is recursive halving: if the current region is edge-free the
/// count is 0; if every class is a singleton it is 1 (ℓ-uniformity); otherwise
/// split the largest class in two and recurse. The number of oracle calls is
/// `O(|E| · ℓ · log N + 1)`.
pub fn exact_edge_count<O: EdgeFreeOracle>(oracle: &mut O) -> u64 {
    let parts = full_parts(oracle);
    count_region(oracle, &parts, None).expect("no budget given")
}

/// Like [`exact_edge_count`] but gives up (returning `None`) once more than
/// `budget` oracle calls would be needed. Used by the approximate counter to
/// detect that the (sub-sampled) region still contains too many edges.
pub fn exact_edge_count_with_budget<O: EdgeFreeOracle>(
    oracle: &mut O,
    parts: &[BTreeSet<usize>],
    budget: u64,
) -> Option<u64> {
    let mut remaining = budget;
    count_region(oracle, parts, Some(&mut remaining))
}

fn count_region<O: EdgeFreeOracle>(
    oracle: &mut O,
    parts: &[BTreeSet<usize>],
    mut budget: Option<&mut u64>,
) -> Option<u64> {
    if let Some(b) = budget.as_deref_mut() {
        if *b == 0 {
            return None;
        }
        *b -= 1;
    }
    if oracle.edge_free(parts) {
        return Some(0);
    }
    // Not edge-free. If every class is a singleton the region is exactly one
    // potential edge, and since it is not edge-free, it *is* an edge.
    if parts.iter().all(|p| p.len() == 1) {
        return Some(1);
    }
    // Split the largest class into two halves.
    let (idx, _) = parts
        .iter()
        .enumerate()
        .max_by_key(|(_, p)| p.len())
        .expect("non-empty: some class has ≥ 2 vertices");
    let items: Vec<usize> = parts[idx].iter().copied().collect();
    let (left, right) = items.split_at(items.len() / 2);
    let mut left_parts = parts.to_vec();
    left_parts[idx] = left.iter().copied().collect();
    let mut right_parts = parts.to_vec();
    right_parts[idx] = right.iter().copied().collect();
    let l = count_region(oracle, &left_parts, budget.as_deref_mut())?;
    let r = count_region(oracle, &right_parts, budget)?;
    Some(l + r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explicit::ExplicitHypergraph;
    use crate::oracle::CountingOracle;

    #[test]
    fn counts_small_hypergraphs_exactly() {
        let cases = vec![
            ExplicitHypergraph::new(vec![4, 4], vec![]),
            ExplicitHypergraph::new(vec![4, 4], vec![vec![0, 0]]),
            ExplicitHypergraph::new(vec![4, 4], vec![vec![0, 0], vec![1, 2], vec![3, 3]]),
            ExplicitHypergraph::complete(vec![3, 3]),
            ExplicitHypergraph::complete(vec![2, 2, 2]),
            ExplicitHypergraph::new(
                vec![5, 3, 2],
                vec![vec![0, 0, 0], vec![4, 2, 1], vec![2, 1, 0], vec![2, 1, 1]],
            ),
        ];
        for h in cases {
            let expected = h.num_edges() as u64;
            let mut oracle = h;
            assert_eq!(exact_edge_count(&mut oracle), expected);
        }
    }

    #[test]
    fn single_class_hypergraph() {
        // ℓ = 1: edges are single vertices
        let h = ExplicitHypergraph::new(vec![6], vec![vec![0], vec![3], vec![5]]);
        let mut oracle = h;
        assert_eq!(exact_edge_count(&mut oracle), 3);
    }

    #[test]
    fn oracle_call_count_is_reasonable() {
        // |E| = 4, N = 16 per class, ℓ = 2: calls should be well below the
        // brute-force 256 and in the ballpark of |E|·ℓ·log N.
        let h = ExplicitHypergraph::new(
            vec![16, 16],
            vec![vec![0, 0], vec![5, 7], vec![9, 2], vec![15, 15]],
        );
        let mut oracle = CountingOracle::new(h);
        assert_eq!(exact_edge_count(&mut oracle), 4);
        assert!(oracle.calls() < 150, "used {} calls", oracle.calls());
    }

    #[test]
    fn budget_exhaustion_returns_none() {
        let h = ExplicitHypergraph::complete(vec![8, 8]);
        let mut oracle = h;
        let parts = full_parts(&oracle);
        assert_eq!(exact_edge_count_with_budget(&mut oracle, &parts, 10), None);
        // a generous budget succeeds
        assert_eq!(
            exact_edge_count_with_budget(&mut oracle, &parts, 100_000),
            Some(64)
        );
    }

    #[test]
    fn count_restricted_region() {
        let h = ExplicitHypergraph::new(
            vec![4, 4],
            vec![vec![0, 0], vec![1, 1], vec![2, 2], vec![3, 3]],
        );
        let mut oracle = h;
        // restrict class 0 to {0, 1}: two edges remain
        let parts = vec![[0, 1].into_iter().collect(), (0..4).collect()];
        assert_eq!(
            exact_edge_count_with_budget(&mut oracle, &parts, 10_000),
            Some(2)
        );
    }

    #[test]
    fn zero_classes_edge_case() {
        // ℓ = 0: the hypergraph can have at most the empty edge; our explicit
        // representation yields exactly one (the empty tuple).
        let h = ExplicitHypergraph::complete(vec![]);
        let mut oracle = h;
        assert_eq!(exact_edge_count(&mut oracle), 1);
    }
}
