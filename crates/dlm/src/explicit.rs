//! An explicit ℓ-partite ℓ-uniform hypergraph with a built-in `EdgeFree`
//! oracle — used for testing the framework independently of query answering
//! and as ground truth in experiments.

use crate::oracle::EdgeFreeOracle;
use std::collections::BTreeSet;

/// An explicitly stored ℓ-partite ℓ-uniform hypergraph.
///
/// Edges are stored as vectors of length `ℓ`; the `i`-th entry is the vertex
/// chosen from class `i` (an index below `class_sizes[i]`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExplicitHypergraph {
    class_sizes: Vec<usize>,
    edges: Vec<Vec<usize>>,
}

impl ExplicitHypergraph {
    /// Create a hypergraph from explicit class sizes and edges.
    ///
    /// # Panics
    /// Panics if an edge has the wrong length or references an out-of-range
    /// vertex. Duplicate edges are collapsed.
    pub fn new(class_sizes: Vec<usize>, edges: Vec<Vec<usize>>) -> Self {
        let mut seen: BTreeSet<Vec<usize>> = BTreeSet::new();
        for e in &edges {
            assert_eq!(e.len(), class_sizes.len(), "edge arity mismatch");
            for (i, &v) in e.iter().enumerate() {
                assert!(v < class_sizes[i], "vertex {v} out of range in class {i}");
            }
            seen.insert(e.clone());
        }
        ExplicitHypergraph {
            class_sizes,
            edges: seen.into_iter().collect(),
        }
    }

    /// The exact number of edges (ground truth).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The edges.
    pub fn edges(&self) -> &[Vec<usize>] {
        &self.edges
    }

    /// A complete ℓ-partite hypergraph (every combination is an edge).
    pub fn complete(class_sizes: Vec<usize>) -> Self {
        let mut edges = vec![vec![]];
        for &size in &class_sizes {
            let mut next = Vec::new();
            for e in &edges {
                for v in 0..size {
                    let mut e2 = e.clone();
                    e2.push(v);
                    next.push(e2);
                }
            }
            edges = next;
        }
        if class_sizes.is_empty() {
            edges = vec![vec![]];
        }
        ExplicitHypergraph { class_sizes, edges }
    }
}

impl EdgeFreeOracle for ExplicitHypergraph {
    fn num_classes(&self) -> usize {
        self.class_sizes.len()
    }

    fn class_size(&self, i: usize) -> usize {
        self.class_sizes[i]
    }

    fn edge_free(&mut self, parts: &[BTreeSet<usize>]) -> bool {
        assert_eq!(parts.len(), self.class_sizes.len());
        !self
            .edges
            .iter()
            .any(|e| e.iter().enumerate().all(|(i, v)| parts[i].contains(v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::full_parts;

    #[test]
    fn edge_free_detection() {
        let mut h = ExplicitHypergraph::new(vec![3, 3], vec![vec![0, 1], vec![2, 2]]);
        assert_eq!(h.num_edges(), 2);
        let full = full_parts(&h);
        assert!(!h.edge_free(&full));
        // restrict class 0 to {1}: no edge has 1 in class 0
        let parts = vec![[1].into_iter().collect(), full[1].clone()];
        assert!(h.edge_free(&parts));
        // restrict to exactly the edge (2,2)
        let parts = vec![[2].into_iter().collect(), [2].into_iter().collect()];
        assert!(!h.edge_free(&parts));
        // empty class set
        let parts = vec![BTreeSet::new(), full[1].clone()];
        assert!(h.edge_free(&parts));
    }

    #[test]
    fn duplicates_collapse_and_validation() {
        let h = ExplicitHypergraph::new(vec![2, 2], vec![vec![0, 0], vec![0, 0]]);
        assert_eq!(h.num_edges(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_vertex_panics() {
        ExplicitHypergraph::new(vec![2, 2], vec![vec![0, 5]]);
    }

    #[test]
    fn complete_hypergraph() {
        let h = ExplicitHypergraph::complete(vec![3, 4]);
        assert_eq!(h.num_edges(), 12);
        let h = ExplicitHypergraph::complete(vec![2, 2, 2]);
        assert_eq!(h.num_edges(), 8);
        let h = ExplicitHypergraph::complete(vec![5]);
        assert_eq!(h.num_edges(), 5);
    }

    #[test]
    fn three_partite_membership() {
        let mut h = ExplicitHypergraph::new(vec![2, 3, 2], vec![vec![0, 2, 1], vec![1, 0, 0]]);
        let parts = vec![
            [0].into_iter().collect(),
            [2].into_iter().collect(),
            [1].into_iter().collect(),
        ];
        assert!(!h.edge_free(&parts));
        let parts = vec![
            [0].into_iter().collect(),
            [0].into_iter().collect(),
            [1].into_iter().collect(),
        ];
        assert!(h.edge_free(&parts));
    }
}
