//! The `EdgeFree` oracle interface.

use std::collections::BTreeSet;

/// A decision oracle for an `ℓ`-partite `ℓ`-uniform hypergraph `H` whose
/// vertex classes are `U₀, …, U_{ℓ−1}` (Definition 24 instantiates this with
/// `U_i = U(D) × {i}`).
///
/// The only access to the hyperedge set is [`EdgeFreeOracle::edge_free`]:
/// given per-class subsets `V_i ⊆ U_i`, report whether `H[V₀, …, V_{ℓ−1}]`
/// has **no** hyperedge. This mirrors the access model of Theorem 17; the
/// restriction to *class-aligned* subsets is the "most important case"
/// identified in the proof of Lemma 22, and [`PermutationOracle`] recovers
/// the fully general ℓ-partite queries from it.
pub trait EdgeFreeOracle {
    /// The number of vertex classes `ℓ`.
    fn num_classes(&self) -> usize;

    /// The size of class `i` (`|U_i|`).
    fn class_size(&self, i: usize) -> usize;

    /// Does `H[V₀, …, V_{ℓ−1}]` contain **no** hyperedge?
    /// `parts[i] ⊆ {0, .., class_size(i) − 1}`.
    fn edge_free(&mut self, parts: &[BTreeSet<usize>]) -> bool;

    /// Number of oracle queries answered so far (for experiment reporting).
    fn calls(&self) -> u64 {
        0
    }
}

/// A wrapper that counts oracle calls made through it.
pub struct CountingOracle<O> {
    inner: O,
    calls: u64,
}

impl<O: EdgeFreeOracle> CountingOracle<O> {
    /// Wrap an oracle.
    pub fn new(inner: O) -> Self {
        CountingOracle { inner, calls: 0 }
    }

    /// The wrapped oracle.
    pub fn into_inner(self) -> O {
        self.inner
    }
}

impl<O: EdgeFreeOracle> EdgeFreeOracle for CountingOracle<O> {
    fn num_classes(&self) -> usize {
        self.inner.num_classes()
    }
    fn class_size(&self, i: usize) -> usize {
        self.inner.class_size(i)
    }
    fn edge_free(&mut self, parts: &[BTreeSet<usize>]) -> bool {
        self.calls += 1;
        self.inner.edge_free(parts)
    }
    fn calls(&self) -> u64 {
        self.calls
    }
}

impl<O: EdgeFreeOracle + ?Sized> EdgeFreeOracle for &mut O {
    fn num_classes(&self) -> usize {
        (**self).num_classes()
    }
    fn class_size(&self, i: usize) -> usize {
        (**self).class_size(i)
    }
    fn edge_free(&mut self, parts: &[BTreeSet<usize>]) -> bool {
        (**self).edge_free(parts)
    }
    fn calls(&self) -> u64 {
        (**self).calls()
    }
}

/// A vertex of the union `⋃_i U_i`, identified by its class and its index
/// within the class.
pub type UnionVertex = (usize, usize);

/// Lifts a class-aligned [`EdgeFreeOracle`] to queries over **arbitrary**
/// ℓ-partite subsets `(W₁, …, W_ℓ)` of the union vertex set, exactly as in
/// the proof of Lemma 22: since every hyperedge contains one vertex from each
/// class, `H[W₁..W_ℓ]` has an edge iff for some permutation `π` of the
/// classes, `H[V₁..V_ℓ]` has an edge where `V_i = W_{π(i)} ∩ U_i`. The lifted
/// query therefore costs at most `ℓ!` class-aligned queries.
pub struct PermutationOracle<O> {
    inner: O,
}

impl<O: EdgeFreeOracle> PermutationOracle<O> {
    /// Wrap a class-aligned oracle.
    pub fn new(inner: O) -> Self {
        PermutationOracle { inner }
    }

    /// Access the wrapped oracle.
    pub fn inner_mut(&mut self) -> &mut O {
        &mut self.inner
    }

    /// Does `H[W₁, …, W_ℓ]` (arbitrary disjoint union-vertex subsets) contain
    /// no hyperedge?
    pub fn edge_free_general(&mut self, w: &[BTreeSet<UnionVertex>]) -> bool {
        let ell = self.inner.num_classes();
        assert_eq!(w.len(), ell);
        if ell == 0 {
            // A 0-uniform hypergraph has at most the empty edge; by convention
            // the restricted oracle decides it directly.
            return self.inner.edge_free(&[]);
        }
        // Enumerate permutations π of the classes (Heap's algorithm).
        let mut perm: Vec<usize> = (0..ell).collect();
        let mut c = vec![0usize; ell];
        if !self.restricted_query(w, &perm) {
            return false;
        }
        let mut i = 0;
        while i < ell {
            if c[i] < i {
                if i % 2 == 0 {
                    perm.swap(0, i);
                } else {
                    perm.swap(c[i], i);
                }
                if !self.restricted_query(w, &perm) {
                    return false;
                }
                c[i] += 1;
                i = 0;
            } else {
                c[i] = 0;
                i += 1;
            }
        }
        true
    }

    /// One restricted query: `V_i = W_{π(i)} ∩ U_i`. Returns the oracle's
    /// edge-freeness verdict.
    fn restricted_query(&mut self, w: &[BTreeSet<UnionVertex>], perm: &[usize]) -> bool {
        let ell = self.inner.num_classes();
        let parts: Vec<BTreeSet<usize>> = (0..ell)
            .map(|i| {
                w[perm[i]]
                    .iter()
                    .filter(|&&(class, _)| class == i)
                    .map(|&(_, v)| v)
                    .collect()
            })
            .collect();
        self.inner.edge_free(&parts)
    }
}

/// Convenience: the full per-class subsets (no restriction).
pub fn full_parts<O: EdgeFreeOracle>(oracle: &O) -> Vec<BTreeSet<usize>> {
    (0..oracle.num_classes())
        .map(|i| (0..oracle.class_size(i)).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explicit::ExplicitHypergraph;

    #[test]
    fn counting_oracle_counts() {
        let h = ExplicitHypergraph::new(vec![2, 2], vec![vec![0, 0], vec![1, 1]]);
        let mut o = CountingOracle::new(h);
        let parts = full_parts(&o);
        assert!(!o.edge_free(&parts));
        assert!(!o.edge_free(&parts));
        assert_eq!(o.calls(), 2);
        assert_eq!(o.num_classes(), 2);
        assert_eq!(o.class_size(0), 2);
    }

    #[test]
    fn permutation_oracle_matches_direct_queries() {
        // classes of size 3 and 2; edges (0,1) and (2,0)
        let h = ExplicitHypergraph::new(vec![3, 2], vec![vec![0, 1], vec![2, 0]]);
        let mut p = PermutationOracle::new(h);
        // W1 contains class-0 vertex 0 and class-1 vertex 0; W2 contains class-1 vertex 1
        // and class-0 vertex 2: the edge (0, 1) needs 0 ∈ V_0 and 1 ∈ V_1 which is
        // realised by the identity permutation.
        let w1: BTreeSet<UnionVertex> = [(0, 0), (1, 0)].into_iter().collect();
        let w2: BTreeSet<UnionVertex> = [(1, 1), (0, 2)].into_iter().collect();
        assert!(!p.edge_free_general(&[w1.clone(), w2.clone()]));
        // swapped order must give the same verdict (permutation handles it)
        assert!(!p.edge_free_general(&[w2, w1]));
        // subsets that miss both edges
        let w1: BTreeSet<UnionVertex> = [(0, 1)].into_iter().collect();
        let w2: BTreeSet<UnionVertex> = [(1, 1)].into_iter().collect();
        assert!(p.edge_free_general(&[w1, w2]));
    }

    #[test]
    fn permutation_oracle_with_mixed_classes() {
        // An edge is only found when the per-class intersections line up under
        // *some* permutation.
        let h = ExplicitHypergraph::new(vec![2, 2], vec![vec![1, 0]]);
        let mut p = PermutationOracle::new(h);
        // W1 holds the class-1 vertex, W2 holds the class-0 vertex: only the
        // non-identity permutation finds the edge.
        let w1: BTreeSet<UnionVertex> = [(1, 0)].into_iter().collect();
        let w2: BTreeSet<UnionVertex> = [(0, 1)].into_iter().collect();
        assert!(!p.edge_free_general(&[w1, w2]));
    }
}
