//! (Approximately) uniform hyperedge sampling by self-reducible descent.
//!
//! The sampling extension of Section 6 of the paper lifts approximate
//! counting to approximate uniform sampling. In the `EdgeFree` oracle model
//! this takes the form of a self-reducible descent: repeatedly split a class
//! in two, count the edges on each side, and descend into one side with
//! probability proportional to its count, until a single edge remains.
//! With exact counts (used here via recursive halving) the sample is exactly
//! uniform; plugging in approximate counts yields an approximately uniform
//! sampler with the usual multiplicative bias bound.

use crate::exact::exact_edge_count_with_budget;
use crate::oracle::{full_parts, EdgeFreeOracle};
use rand::Rng;
use std::collections::BTreeSet;

/// Sample a hyperedge uniformly at random, or return `None` if the hypergraph
/// has no edges. The returned vector has one vertex per class.
///
/// Uses exact counting (recursive halving) for the descent probabilities, so
/// the output distribution is exactly uniform over `E(H)`; the cost is
/// `O(|E| · poly(ℓ, log N))` oracle calls per sample, which is fine for the
/// moderate answer counts exercised by the examples and experiments. (A
/// fully polynomial approximate sampler is obtained by replacing the exact
/// counts with [`crate::approx_edge_count`]; see Section 6 of the paper.)
pub fn sample_edge<O: EdgeFreeOracle, R: Rng>(oracle: &mut O, rng: &mut R) -> Option<Vec<usize>> {
    let full = full_parts(oracle);
    if oracle.edge_free(&full) {
        return None;
    }
    // The oracle may be probabilistic (the colour-coding simulation of
    // Lemma 22): a positive answer certifies an edge, but "edge-free" can be
    // a false negative with small probability. If a descent step finds both
    // halves empty even though the parent region is certified non-empty, the
    // oracle went blind mid-descent — restart the descent from the full
    // region, which consumes fresh oracle randomness, rather than panicking
    // or descending into a region that may truly be empty (which would end
    // at a non-edge). Each restart fails with probability at most the
    // oracle's per-descent error, so the loop terminates geometrically fast.
    const MAX_RESTARTS: usize = 256;
    for _ in 0..MAX_RESTARTS {
        let mut parts = full.clone();
        'descent: loop {
            // done when every class is a singleton
            if parts.iter().all(|p| p.len() == 1) {
                return Some(
                    parts
                        .iter()
                        .map(|p| *p.iter().next().expect("singleton"))
                        .collect(),
                );
            }
            // split the largest class
            let (idx, _) = parts
                .iter()
                .enumerate()
                .max_by_key(|(_, p)| p.len())
                .expect("some class has ≥ 2 vertices");
            let items: Vec<usize> = parts[idx].iter().copied().collect();
            let (left, right) = items.split_at(items.len() / 2);
            let mut left_parts = parts.clone();
            left_parts[idx] = left.iter().copied().collect();
            let mut right_parts = parts.clone();
            right_parts[idx] = right.iter().copied().collect();
            let cl = exact_edge_count_with_budget(oracle, &left_parts, u64::MAX)
                .expect("unbounded budget");
            let cr = exact_edge_count_with_budget(oracle, &right_parts, u64::MAX)
                .expect("unbounded budget");
            if cl + cr == 0 {
                break 'descent; // oracle false negative: restart from the top
            }
            let go_left = (rng.gen_range(0..cl + cr)) < cl;
            parts = if go_left { left_parts } else { right_parts };
        }
    }
    panic!("sample_edge: oracle reported the region non-empty but {MAX_RESTARTS} descents found no edge");
}

/// Draw `samples` edges and return the empirical distribution as a map from
/// edge to frequency (testing helper; exposed because the experiments use it
/// to report total-variation distance).
pub fn empirical_distribution<O: EdgeFreeOracle, R: Rng>(
    oracle: &mut O,
    rng: &mut R,
    samples: usize,
) -> std::collections::BTreeMap<Vec<usize>, usize> {
    let mut out = std::collections::BTreeMap::new();
    for _ in 0..samples {
        if let Some(e) = sample_edge(oracle, rng) {
            *out.entry(e).or_insert(0) += 1;
        }
    }
    out
}

/// Helper used by tests: restrict `parts` to a single vertex `v` in class
/// `class` (exposed for the core crate's self-reduction tests).
pub fn restrict_class(parts: &[BTreeSet<usize>], class: usize, v: usize) -> Vec<BTreeSet<usize>> {
    let mut out = parts.to_vec();
    out[class] = [v].into_iter().collect();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explicit::ExplicitHypergraph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sampling_empty_hypergraph_returns_none() {
        let mut h = ExplicitHypergraph::new(vec![4, 4], vec![]);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(sample_edge(&mut h, &mut rng), None);
    }

    #[test]
    fn sampled_edges_are_real_edges() {
        let edges = vec![vec![0, 3], vec![1, 1], vec![2, 0], vec![3, 2]];
        let mut h = ExplicitHypergraph::new(vec![4, 4], edges.clone());
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let e = sample_edge(&mut h, &mut rng).unwrap();
            assert!(edges.contains(&e), "sampled non-edge {e:?}");
        }
    }

    #[test]
    fn distribution_is_close_to_uniform() {
        // 4 edges, 2000 samples: each frequency should be near 500.
        let edges = vec![vec![0, 0], vec![1, 2], vec![2, 1], vec![3, 3]];
        let mut h = ExplicitHypergraph::new(vec![4, 4], edges.clone());
        let mut rng = StdRng::seed_from_u64(3);
        let dist = empirical_distribution(&mut h, &mut rng, 2000);
        assert_eq!(dist.len(), 4);
        for &count in dist.values() {
            assert!(
                (count as i64 - 500).abs() < 150,
                "frequency {count} far from uniform"
            );
        }
    }

    #[test]
    fn skewed_structure_does_not_skew_distribution() {
        // edges concentrated on one vertex of class 0 plus one stray edge
        let edges = vec![vec![0, 0], vec![0, 1], vec![0, 2], vec![3, 3]];
        let mut h = ExplicitHypergraph::new(vec![4, 4], edges.clone());
        let mut rng = StdRng::seed_from_u64(4);
        let dist = empirical_distribution(&mut h, &mut rng, 2000);
        // the stray edge must appear with frequency ≈ 1/4
        let stray = dist.get(&vec![3, 3]).copied().unwrap_or(0);
        assert!(
            (stray as i64 - 500).abs() < 150,
            "stray edge frequency {stray}"
        );
    }

    #[test]
    fn three_uniform_sampling() {
        let edges = vec![vec![0, 1, 0], vec![1, 0, 1], vec![2, 2, 0]];
        let mut h = ExplicitHypergraph::new(vec![3, 3, 2], edges.clone());
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..30 {
            let e = sample_edge(&mut h, &mut rng).unwrap();
            assert!(edges.contains(&e));
        }
    }

    /// An oracle that answers honestly except on a chosen set of call
    /// indices (1-based), where it falsely reports "edge-free" — the
    /// colour-coding oracle's one-sided failure mode (a positive answer
    /// certifies an edge; a negative can be a false negative).
    struct LyingOracle {
        inner: ExplicitHypergraph,
        calls: u64,
        lie_on: std::ops::RangeInclusive<u64>,
    }

    impl EdgeFreeOracle for LyingOracle {
        fn num_classes(&self) -> usize {
            self.inner.num_classes()
        }
        fn class_size(&self, i: usize) -> usize {
            self.inner.class_size(i)
        }
        fn edge_free(&mut self, parts: &[BTreeSet<usize>]) -> bool {
            self.calls += 1;
            if self.lie_on.contains(&self.calls) {
                return true; // false negative: deny the edge
            }
            self.inner.edge_free(parts)
        }
        fn calls(&self) -> u64 {
            self.calls
        }
    }

    /// Regression test for the false-negative restart: a probabilistic
    /// oracle that goes blind mid-descent (both halves of a certified
    /// non-empty region count to zero) must make `sample_edge` restart the
    /// descent with fresh randomness — the pre-fix code panicked with
    /// "region non-empty but no edge found on either side".
    #[test]
    fn false_negative_mid_descent_restarts_instead_of_panicking() {
        let edges = vec![vec![0, 3], vec![1, 1], vec![2, 0], vec![3, 2]];
        // Call 1 is the initial non-emptiness certificate (must be honest).
        // Calls 2–3 are the first descent step's two half counts: lying
        // "edge-free" on both makes cl + cr == 0 with the parent certified
        // non-empty — exactly the mid-descent blind spot. A couple more
        // lying calls widen the window in case the split order shifts.
        let mut oracle = LyingOracle {
            inner: ExplicitHypergraph::new(vec![4, 4], edges.clone()),
            calls: 0,
            lie_on: 2..=4,
        };
        let mut rng = StdRng::seed_from_u64(6);
        let e = sample_edge(&mut oracle, &mut rng).expect("restart must find an edge");
        assert!(edges.contains(&e), "sampled non-edge {e:?}");
        // the restart really happened: more calls than one clean descent of
        // the lying window, and the post-window descent ran to completion
        assert!(oracle.calls() > 4, "only {} oracle calls", oracle.calls());
    }

    /// The restart loop gives up (panics with a diagnostic) only when the
    /// oracle denies every edge forever — it must not loop unboundedly.
    #[test]
    #[should_panic(expected = "descents found no edge")]
    fn permanently_blind_oracle_panics_with_diagnostic() {
        let mut oracle = LyingOracle {
            inner: ExplicitHypergraph::new(vec![2, 2], vec![vec![0, 0]]),
            calls: 0,
            lie_on: 2..=u64::MAX,
        };
        let mut rng = StdRng::seed_from_u64(7);
        let _ = sample_edge(&mut oracle, &mut rng);
    }

    #[test]
    fn restrict_class_helper() {
        let parts: Vec<BTreeSet<usize>> = vec![(0..4).collect(), (0..4).collect()];
        let r = restrict_class(&parts, 1, 2);
        assert_eq!(r[1].len(), 1);
        assert!(r[1].contains(&2));
        assert_eq!(r[0].len(), 4);
    }
}
