//! Property-based tests for the Dell–Lapinskas–Meeks-style edge counter:
//! the exact oracle-only counter, the `(ε, δ)` approximate counter and the
//! uniform edge sampler, all exercised on random explicit ℓ-partite
//! ℓ-uniform hypergraphs (the access model of Theorem 17).

use cqc_dlm::{
    approx_edge_count, exact_edge_count, sample_edge, ApproxMethod, CountingOracle, DlmConfig,
    EdgeFreeOracle, ExplicitHypergraph,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;

/// A random explicit ℓ-partite hypergraph with ℓ ∈ {1, 2, 3} and small
/// classes, described by its class sizes and a set of edges.
#[derive(Debug, Clone)]
struct RawHypergraph {
    class_sizes: Vec<usize>,
    edges: Vec<Vec<usize>>,
}

fn raw_hypergraph(max_edges: usize) -> impl Strategy<Value = RawHypergraph> {
    (1usize..=3)
        .prop_flat_map(move |ell| {
            proptest::collection::vec(1usize..=5, ell..=ell).prop_flat_map(move |class_sizes| {
                let sizes = class_sizes.clone();
                let edge = sizes
                    .iter()
                    .map(|&s| 0..s)
                    .collect::<Vec<_>>()
                    .prop_map(|v| v.to_vec());
                (
                    Just(class_sizes),
                    proptest::collection::vec(edge, 0..max_edges),
                )
            })
        })
        .prop_map(|(class_sizes, edges)| RawHypergraph { class_sizes, edges })
}

fn distinct_edges(raw: &RawHypergraph) -> usize {
    let set: BTreeSet<Vec<usize>> = raw.edges.iter().cloned().collect();
    set.len()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The oracle-only exact counter returns the true edge count.
    #[test]
    fn exact_counter_is_exact(raw in raw_hypergraph(12)) {
        let truth = distinct_edges(&raw) as u64;
        let mut oracle = CountingOracle::new(ExplicitHypergraph::new(
            raw.class_sizes.clone(),
            raw.edges.clone(),
        ));
        let count = exact_edge_count(&mut oracle);
        prop_assert_eq!(count, truth);
        if truth > 0 {
            prop_assert!(oracle.calls() > 0);
        }
    }

    /// The `EdgeFree` predicate on the full parts is "no edges at all", and
    /// restricting any class to the empty set makes the restriction edge-free
    /// (no hyperedge can pick a vertex from an empty class).
    #[test]
    fn edge_free_predicate_consistency(raw in raw_hypergraph(12)) {
        let mut h = ExplicitHypergraph::new(raw.class_sizes.clone(), raw.edges.clone());
        let full: Vec<BTreeSet<usize>> = raw
            .class_sizes
            .iter()
            .map(|&s| (0..s).collect())
            .collect();
        prop_assert_eq!(h.edge_free(&full), distinct_edges(&raw) == 0);

        for i in 0..raw.class_sizes.len() {
            let mut parts = full.clone();
            parts[i] = BTreeSet::new();
            prop_assert!(h.edge_free(&parts));
        }
    }

    /// The approximate counter is exact whenever it reports the `Exact`
    /// method, and within a generous multiplicative window otherwise (the
    /// per-case failure probability δ = 0.02 keeps statistical flakes out of
    /// the 96-case run; tolerances are double the configured ε).
    #[test]
    fn approx_counter_within_tolerance(raw in raw_hypergraph(20), seed in any::<u64>()) {
        let truth = distinct_edges(&raw) as f64;
        let mut oracle = ExplicitHypergraph::new(raw.class_sizes.clone(), raw.edges.clone());
        let cfg = DlmConfig::new(0.25, 0.01);
        let mut rng = StdRng::seed_from_u64(seed);
        let result = approx_edge_count(&mut oracle, &cfg, &mut rng);
        match result.method {
            ApproxMethod::Exact => prop_assert_eq!(result.estimate, truth),
            ApproxMethod::Sampled { .. } => {
                prop_assert!(
                    (result.estimate - truth).abs() <= 0.5 * truth.max(1.0),
                    "estimate {} vs truth {}",
                    result.estimate,
                    truth
                );
            }
        }
    }

    /// Zero edges are always detected exactly (the counter must never invent
    /// hyperedges), and a complete ℓ-partite hypergraph is counted exactly or
    /// within tolerance.
    #[test]
    fn empty_and_complete_extremes(class_sizes in proptest::collection::vec(1usize..=4, 1..=3), seed in any::<u64>()) {
        let mut empty = ExplicitHypergraph::new(class_sizes.clone(), vec![]);
        let cfg = DlmConfig::new(0.2, 0.01);
        let mut rng = StdRng::seed_from_u64(seed);
        let r = approx_edge_count(&mut empty, &cfg, &mut rng);
        prop_assert_eq!(r.estimate, 0.0);

        let mut complete = ExplicitHypergraph::complete(class_sizes.clone());
        let truth: usize = class_sizes.iter().product();
        let r = approx_edge_count(&mut complete, &cfg, &mut rng);
        prop_assert!(
            (r.estimate - truth as f64).abs() <= 0.5 * truth as f64,
            "estimate {} vs truth {}",
            r.estimate,
            truth
        );
    }

    /// The self-reducible sampler only ever returns actual hyperedges, and
    /// returns `None` exactly when the hypergraph is edge-free.
    #[test]
    fn sampler_returns_real_edges(raw in raw_hypergraph(10), seed in any::<u64>()) {
        let edge_set: BTreeSet<Vec<usize>> = raw.edges.iter().cloned().collect();
        let mut oracle = ExplicitHypergraph::new(raw.class_sizes.clone(), raw.edges.clone());
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..5 {
            match sample_edge(&mut oracle, &mut rng) {
                Some(edge) => {
                    prop_assert!(edge_set.contains(&edge), "sampled {:?} not an edge", edge);
                }
                None => prop_assert!(edge_set.is_empty()),
            }
        }
    }

    /// On a single-edge hypergraph the sampler finds that edge.
    #[test]
    fn sampler_finds_the_unique_edge(class_sizes in proptest::collection::vec(1usize..=4, 1..=3), seed in any::<u64>()) {
        let edge: Vec<usize> = class_sizes.iter().map(|&s| s - 1).collect();
        let mut oracle = ExplicitHypergraph::new(class_sizes, vec![edge.clone()]);
        let mut rng = StdRng::seed_from_u64(seed);
        let sampled = sample_edge(&mut oracle, &mut rng);
        prop_assert_eq!(sampled, Some(edge));
    }
}
