//! # cqc-hypergraph — hypergraphs, tree decompositions and width measures
//!
//! This crate provides the hypergraph machinery used throughout the paper
//! *Approximately Counting Answers to Conjunctive Queries with Disequalities
//! and Negations* (PODS 2022):
//!
//! * [`Hypergraph`] — finite hypergraphs `H = (V(H), E(H))` (Definition 3 uses
//!   these as the hypergraphs `H(ϕ)` of queries).
//! * [`TreeDecomposition`] — tree decompositions `(T, B)` (Definition 4),
//!   including validation, *nice* tree decompositions (Definition 42) and the
//!   constructions used in the proofs of Theorem 5 / Lemma 35 (adding size-1
//!   hyperedges without increasing width).
//! * Width measures:
//!   - treewidth `tw(H)` (Definition 4): exact for small hypergraphs plus
//!     min-fill / min-degree heuristics,
//!   - generic `f`-width (Definition 32),
//!   - fractional edge covers and `fcn(H[X])` (Definition 39) via an in-crate
//!     simplex LP solver,
//!   - fractional hypertreewidth `fhw(H)` (Definition 41),
//!   - hypertreewidth `hw(H)` (Definition 37, guard computation by exact
//!     small set cover + greedy),
//!   - adaptive width `aw(H)` (Definition 33): exact-for-small via LP-based
//!     alternating optimisation, plus the general bounds `aw ≤ fhw` and
//!     Observation 34 (`tw ≤ a·aw − 1`).
//!
//! No external hypergraph or LP crate is used; everything is implemented here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod decomposition;
pub mod fractional;
pub mod fwidth;
pub mod hypergraph;
pub mod hypertree;
pub mod lp;
pub mod treewidth;

pub use decomposition::{NiceNodeKind, NiceTreeDecomposition, TreeDecomposition};
pub use fractional::{fractional_cover_number, fractional_edge_cover, FractionalCover};
pub use fwidth::{f_width_of_decomposition, WidthMeasure};
pub use hypergraph::Hypergraph;
pub use hypertree::hypertree_width_of_decomposition;
pub use lp::{LinearProgram, LpError, LpSolution};
pub use treewidth::{treewidth_exact, treewidth_upper_bound, EliminationOrder};
