//! Integral edge covers and hypertreewidth (Definition 37).
//!
//! A hypertree decomposition `(T, B, Γ)` augments a tree decomposition with a
//! *guard* `Γ_t ⊆ E(H)` per node such that `B_t ⊆ ∪ Γ_t`; its width is the
//! maximum guard cardinality. We compute guards per bag as minimum edge
//! covers of the bag (exact branch-and-bound for small bags, greedy set cover
//! otherwise). This yields the *generalised* hypertreewidth of a given tree
//! decomposition, which coincides with hypertreewidth up to a constant factor
//! and is the quantity relevant for all algorithmic uses in this repository
//! (the special condition (iv) of Definition 37 only matters for
//! polynomial-time *computability* of the decomposition, which we sidestep by
//! searching decompositions directly; see DESIGN.md).

use crate::decomposition::TreeDecomposition;
use crate::hypergraph::Hypergraph;
use std::collections::BTreeSet;

/// Minimum number of hyperedges of `H` needed to cover the set `x`
/// (`None` if some vertex of `x` appears in no hyperedge).
///
/// Uses exact branch-and-bound when the number of *relevant* edges is at most
/// 20, greedy set cover otherwise (greedy is a `ln|x|`-approximation, which
/// only ever over-estimates the width — safe for upper bounds).
pub fn integral_cover_number(h: &Hypergraph, x: &BTreeSet<usize>) -> Option<usize> {
    if x.is_empty() {
        return Some(0);
    }
    // Relevant edges, restricted to x, de-duplicated and maximal-only.
    let mut restricted: Vec<BTreeSet<usize>> = h
        .edges()
        .iter()
        .map(|e| e.intersection(x).copied().collect::<BTreeSet<usize>>())
        .filter(|e| !e.is_empty())
        .collect();
    restricted.sort();
    restricted.dedup();
    // Remove edges strictly contained in another (never needed in a minimum cover).
    let maximal: Vec<BTreeSet<usize>> = restricted
        .iter()
        .filter(|e| {
            !restricted
                .iter()
                .any(|f| f.len() > e.len() && e.is_subset(f))
        })
        .cloned()
        .collect();
    // Feasibility.
    let covered: BTreeSet<usize> = maximal.iter().flatten().copied().collect();
    if !x.is_subset(&covered) {
        return None;
    }
    if maximal.len() <= 20 {
        Some(exact_cover(&maximal, x))
    } else {
        Some(greedy_cover(&maximal, x))
    }
}

fn greedy_cover(edges: &[BTreeSet<usize>], x: &BTreeSet<usize>) -> usize {
    let mut uncovered: BTreeSet<usize> = x.clone();
    let mut count = 0;
    while !uncovered.is_empty() {
        let best = edges
            .iter()
            .max_by_key(|e| e.intersection(&uncovered).count())
            .expect("edges remain");
        let gain = best.intersection(&uncovered).count();
        debug_assert!(gain > 0);
        for v in best {
            uncovered.remove(v);
        }
        count += 1;
    }
    count
}

fn exact_cover(edges: &[BTreeSet<usize>], x: &BTreeSet<usize>) -> usize {
    // Branch and bound on the uncovered vertex with fewest covering edges.
    let greedy = greedy_cover(edges, x);
    let mut best = greedy;
    fn recurse(
        edges: &[BTreeSet<usize>],
        uncovered: &BTreeSet<usize>,
        used: usize,
        best: &mut usize,
    ) {
        if uncovered.is_empty() {
            *best = (*best).min(used);
            return;
        }
        if used + 1 >= *best {
            return;
        }
        // pick the uncovered vertex with the fewest covering edges
        let v = *uncovered
            .iter()
            .min_by_key(|&&v| edges.iter().filter(|e| e.contains(&v)).count())
            .expect("non-empty");
        for e in edges.iter().filter(|e| e.contains(&v)) {
            let rest: BTreeSet<usize> = uncovered.difference(e).copied().collect();
            recurse(edges, &rest, used + 1, best);
        }
    }
    recurse(edges, x, 0, &mut best);
    best
}

/// The (generalised) hypertreewidth of a given tree decomposition: the
/// maximum over bags of the minimum edge cover of the bag.
///
/// Returns `None` if some bag contains a vertex lying in no hyperedge.
pub fn hypertree_width_of_decomposition(h: &Hypergraph, td: &TreeDecomposition) -> Option<usize> {
    let mut width = 0usize;
    for bag in td.bags() {
        width = width.max(integral_cover_number(h, bag)?);
    }
    Some(width)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(v: &[usize]) -> BTreeSet<usize> {
        v.iter().copied().collect()
    }

    #[test]
    fn cover_of_empty_set_is_zero() {
        let h = Hypergraph::from_edges(3, &[&[0, 1]]);
        assert_eq!(integral_cover_number(&h, &BTreeSet::new()), Some(0));
    }

    #[test]
    fn cover_single_edge() {
        let h = Hypergraph::from_edges(4, &[&[0, 1, 2, 3]]);
        assert_eq!(integral_cover_number(&h, &set(&[0, 1, 2, 3])), Some(1));
        assert_eq!(integral_cover_number(&h, &set(&[1, 3])), Some(1));
    }

    #[test]
    fn cover_triangle_needs_two() {
        let h = Hypergraph::from_edges(3, &[&[0, 1], &[1, 2], &[0, 2]]);
        assert_eq!(integral_cover_number(&h, &set(&[0, 1, 2])), Some(2));
    }

    #[test]
    fn cover_path_needs_two() {
        let h = Hypergraph::from_edges(4, &[&[0, 1], &[1, 2], &[2, 3]]);
        assert_eq!(integral_cover_number(&h, &set(&[0, 1, 2, 3])), Some(2));
        assert_eq!(integral_cover_number(&h, &set(&[0, 3])), Some(2));
        assert_eq!(integral_cover_number(&h, &set(&[1, 2])), Some(1));
    }

    #[test]
    fn infeasible_cover() {
        let h = Hypergraph::from_edges(3, &[&[0, 1]]);
        assert_eq!(integral_cover_number(&h, &set(&[0, 2])), None);
    }

    #[test]
    fn exact_beats_greedy_on_adversarial_instance() {
        // Classic set-cover instance where greedy is suboptimal:
        // universe {0..5}; sets {0,1,2,3} misses, two disjoint big sets vs overlapping ones.
        // Exact cover: {0,1,2} and {3,4,5} → 2. Greedy may pick {1,2,3,4} first → 3.
        let h = Hypergraph::from_edges(6, &[&[0, 1, 2], &[3, 4, 5], &[1, 2, 3, 4]]);
        assert_eq!(
            integral_cover_number(&h, &set(&[0, 1, 2, 3, 4, 5])),
            Some(2)
        );
    }

    #[test]
    fn hypertreewidth_of_decompositions() {
        let h = Hypergraph::from_edges(4, &[&[0, 1], &[1, 2], &[2, 3]]);
        // single bag: needs 2 edges
        let td = TreeDecomposition::single_bag(set(&[0, 1, 2, 3]));
        assert_eq!(hypertree_width_of_decomposition(&h, &td), Some(2));
        // path decomposition: each bag covered by 1 edge
        let mut td = TreeDecomposition::with_root(set(&[0, 1]));
        let a = td.add_child(0, set(&[1, 2]));
        td.add_child(a, set(&[2, 3]));
        assert_eq!(hypertree_width_of_decomposition(&h, &td), Some(1));
    }

    #[test]
    fn hypertreewidth_none_for_uncoverable_bag() {
        let h = Hypergraph::from_edges(3, &[&[0, 1]]);
        let td = TreeDecomposition::single_bag(set(&[0, 1, 2]));
        assert_eq!(hypertree_width_of_decomposition(&h, &td), None);
    }

    #[test]
    fn subset_edges_are_pruned() {
        // {0,1} ⊂ {0,1,2}: the smaller edge never helps
        let h = Hypergraph::from_edges(3, &[&[0, 1], &[0, 1, 2]]);
        assert_eq!(integral_cover_number(&h, &set(&[0, 1, 2])), Some(1));
    }
}
