//! Generic `f`-width (Definition 32) and width-minimising decomposition
//! search.
//!
//! For a function `f : 2^{V(H)} → ℝ≥0`, the `f`-width of a tree decomposition
//! `(T, B)` is `max_t f(B_t)` and the `f`-width of `H` is the minimum over
//! all tree decompositions. Treewidth (`f(X) = |X| − 1`), fractional
//! hypertreewidth (`f(X) = fcn(H[X])`, Definition 41) and the `μ`-widths used
//! by adaptive width (Definition 33) are all instances.

use crate::decomposition::TreeDecomposition;
use crate::fractional::fractional_cover_number;
use crate::hypergraph::Hypergraph;
use crate::hypertree::integral_cover_number;
use crate::treewidth::{min_degree_order, min_fill_order, EliminationOrder};
use std::collections::BTreeSet;

/// Named width measures used for reporting and experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WidthMeasure {
    /// Treewidth: `f(X) = |X| − 1` (Definition 4).
    Treewidth,
    /// Hypertreewidth: `f(X)` = minimum number of hyperedges covering `X`
    /// (Definition 37; we use the bag-cover relaxation, see module docs of
    /// [`crate::hypertree`]).
    Hypertreewidth,
    /// Fractional hypertreewidth: `f(X) = fcn(H[X])` (Definition 41).
    FractionalHypertreewidth,
}

/// Evaluate the bag cost of `bag` under a width measure.
pub fn bag_cost(h: &Hypergraph, bag: &BTreeSet<usize>, measure: WidthMeasure) -> f64 {
    match measure {
        WidthMeasure::Treewidth => bag.len() as f64 - 1.0,
        WidthMeasure::Hypertreewidth => integral_cover_number(h, bag)
            .map(|c| c as f64)
            .unwrap_or(f64::INFINITY),
        WidthMeasure::FractionalHypertreewidth => {
            fractional_cover_number(h, bag).unwrap_or(f64::INFINITY)
        }
    }
}

/// The `f`-width of a given tree decomposition: `max_t f(B_t)`
/// (Definition 32), for an arbitrary bag-cost function.
pub fn f_width_of_decomposition<F>(td: &TreeDecomposition, mut f: F) -> f64
where
    F: FnMut(&BTreeSet<usize>) -> f64,
{
    td.bags()
        .iter()
        .map(&mut f)
        .fold(f64::NEG_INFINITY, f64::max)
}

/// The `f`-width of a decomposition under a named measure.
pub fn width_of_decomposition(
    h: &Hypergraph,
    td: &TreeDecomposition,
    measure: WidthMeasure,
) -> f64 {
    f_width_of_decomposition(td, |bag| bag_cost(h, bag, measure))
}

/// Search for a tree decomposition of small `f`-width.
///
/// Strategy:
/// * if `H` has at most `exact_limit` vertices, enumerate **all** elimination
///   orders (there are `n!`, so `exact_limit` should stay ≤ 8) and keep the
///   best decomposition;
/// * otherwise fall back to the min-degree and min-fill heuristic orders plus
///   `restarts` random orders, keeping the best.
///
/// Every elimination order yields a valid tree decomposition, so the result
/// is always a correct decomposition of `H`; optimality is guaranteed only in
/// the exhaustive regime (and even there only over decompositions induced by
/// elimination orders, which is exact for treewidth and an upper bound for
/// other measures — see DESIGN.md, substitutions).
pub fn minimise_f_width<F>(
    h: &Hypergraph,
    mut f: F,
    exact_limit: usize,
    restarts: usize,
) -> (f64, TreeDecomposition)
where
    F: FnMut(&Hypergraph, &BTreeSet<usize>) -> f64,
{
    let n = h.num_vertices();
    if n == 0 {
        return (0.0, TreeDecomposition::single_bag(BTreeSet::new()));
    }
    let score = |h: &Hypergraph, td: &TreeDecomposition, f: &mut F| -> f64 {
        td.bags()
            .iter()
            .map(|b| f(h, b))
            .fold(f64::NEG_INFINITY, f64::max)
    };

    let mut best: Option<(f64, TreeDecomposition)> = None;
    let consider =
        |order: &EliminationOrder, f: &mut F, best: &mut Option<(f64, TreeDecomposition)>| {
            let mut td = order.decomposition(h);
            td.ensure_all_vertices(h);
            let td = td.contract_equal_bags();
            let w = score(h, &td, f);
            if best.as_ref().map(|(bw, _)| w < *bw).unwrap_or(true) {
                *best = Some((w, td));
            }
        };

    if n <= exact_limit {
        // Exhaustive enumeration of elimination orders via Heap's algorithm.
        let mut perm: Vec<usize> = (0..n).collect();
        let mut c = vec![0usize; n];
        consider(&EliminationOrder(perm.clone()), &mut f, &mut best);
        let mut i = 0;
        while i < n {
            if c[i] < i {
                if i % 2 == 0 {
                    perm.swap(0, i);
                } else {
                    perm.swap(c[i], i);
                }
                consider(&EliminationOrder(perm.clone()), &mut f, &mut best);
                c[i] += 1;
                i = 0;
            } else {
                c[i] = 0;
                i += 1;
            }
        }
    } else {
        consider(&min_degree_order(h), &mut f, &mut best);
        consider(&min_fill_order(h), &mut f, &mut best);
        // Deterministic pseudo-random restarts (xorshift; no external RNG
        // needed, keeps this crate dependency-free).
        let mut state = 0x9E3779B97F4A7C15u64;
        for _ in 0..restarts {
            let mut perm: Vec<usize> = (0..n).collect();
            for i in (1..n).rev() {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let j = (state % (i as u64 + 1)) as usize;
                perm.swap(i, j);
            }
            consider(&EliminationOrder(perm), &mut f, &mut best);
        }
    }
    best.expect("at least one decomposition considered")
}

/// Compute (an upper bound on) the width of `H` under a named measure,
/// together with a witnessing decomposition. Exhaustive for hypergraphs with
/// at most 8 vertices.
pub fn minimise_width(h: &Hypergraph, measure: WidthMeasure) -> (f64, TreeDecomposition) {
    minimise_f_width(h, |h, bag| bag_cost(h, bag, measure), 8, 32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6
    }

    fn cycle(n: usize) -> Hypergraph {
        let mut h = Hypergraph::new(n);
        for i in 0..n {
            h.add_edge(&[i, (i + 1) % n]);
        }
        h
    }

    #[test]
    fn treewidth_via_f_width() {
        let h = cycle(5);
        let (w, td) = minimise_width(&h, WidthMeasure::Treewidth);
        assert!(approx(w, 2.0));
        assert!(td.validate(&h).is_ok());
    }

    #[test]
    fn fhw_of_single_hyperedge_is_one() {
        let h = Hypergraph::from_edges(4, &[&[0, 1, 2, 3]]);
        let (w, td) = minimise_width(&h, WidthMeasure::FractionalHypertreewidth);
        assert!(approx(w, 1.0));
        assert!(td.validate(&h).is_ok());
    }

    #[test]
    fn fhw_of_triangle_is_one_with_triangle_bag() {
        // the triangle has fhw 1.5 when the bag is all three vertices? No:
        // a single bag {0,1,2} has fcn 1.5; but a decomposition with bags of
        // two vertices violates edge coverage... the best is the single bag,
        // so fhw(triangle) = 1.5.
        let h = cycle(3);
        let (w, _) = minimise_width(&h, WidthMeasure::FractionalHypertreewidth);
        assert!(approx(w, 1.5), "got {w}");
    }

    #[test]
    fn fhw_of_path_is_one() {
        let h = Hypergraph::from_edges(4, &[&[0, 1], &[1, 2], &[2, 3]]);
        let (w, td) = minimise_width(&h, WidthMeasure::FractionalHypertreewidth);
        assert!(approx(w, 1.0), "got {w}");
        assert!(td.validate(&h).is_ok());
    }

    #[test]
    fn hypertreewidth_of_path_is_one() {
        let h = Hypergraph::from_edges(4, &[&[0, 1], &[1, 2], &[2, 3]]);
        let (w, _) = minimise_width(&h, WidthMeasure::Hypertreewidth);
        assert!(approx(w, 1.0));
    }

    #[test]
    fn width_hierarchy_on_small_hypergraphs() {
        // tw + 1 ≥ hw ≥ fhw for any fixed hypergraph (computed on the same
        // search space, all are upper bounds but the ordering still holds
        // pointwise per decomposition, hence after minimisation too).
        for h in [
            cycle(4),
            cycle(5),
            Hypergraph::from_edges(5, &[&[0, 1, 2], &[2, 3, 4], &[0, 4]]),
            Hypergraph::from_edges(6, &[&[0, 1, 2], &[3, 4, 5], &[0, 3], &[2, 5]]),
        ] {
            let (tw, _) = minimise_width(&h, WidthMeasure::Treewidth);
            let (hw, _) = minimise_width(&h, WidthMeasure::Hypertreewidth);
            let (fhw, _) = minimise_width(&h, WidthMeasure::FractionalHypertreewidth);
            assert!(fhw <= hw + 1e-6, "fhw {fhw} > hw {hw}");
            assert!(hw <= tw + 1.0 + 1e-6, "hw {hw} > tw+1 {}", tw + 1.0);
        }
    }

    #[test]
    fn heuristic_regime_still_valid() {
        // 12 vertices forces the heuristic path
        let h = cycle(12);
        let (w, td) = minimise_width(&h, WidthMeasure::Treewidth);
        assert!(td.validate(&h).is_ok());
        assert!(w >= 2.0 - 1e-9);
        assert!(w <= 3.0 + 1e-9);
    }

    #[test]
    fn width_of_given_decomposition() {
        let h = cycle(3);
        let td = TreeDecomposition::single_bag(h.vertices().collect());
        assert!(approx(
            width_of_decomposition(&h, &td, WidthMeasure::Treewidth),
            2.0
        ));
        assert!(approx(
            width_of_decomposition(&h, &td, WidthMeasure::FractionalHypertreewidth),
            1.5
        ));
        assert!(approx(
            width_of_decomposition(&h, &td, WidthMeasure::Hypertreewidth),
            2.0
        ));
    }

    #[test]
    fn empty_hypergraph() {
        let h = Hypergraph::new(0);
        let (w, _) = minimise_width(&h, WidthMeasure::Treewidth);
        assert_eq!(w, 0.0);
    }
}
