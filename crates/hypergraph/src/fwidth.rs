//! Generic `f`-width (Definition 32) and width-minimising decomposition
//! search.
//!
//! For a function `f : 2^{V(H)} → ℝ≥0`, the `f`-width of a tree decomposition
//! `(T, B)` is `max_t f(B_t)` and the `f`-width of `H` is the minimum over
//! all tree decompositions. Treewidth (`f(X) = |X| − 1`), fractional
//! hypertreewidth (`f(X) = fcn(H[X])`, Definition 41) and the `μ`-widths used
//! by adaptive width (Definition 33) are all instances.

use crate::decomposition::TreeDecomposition;
use crate::fractional::fractional_cover_number;
use crate::hypergraph::Hypergraph;
use crate::hypertree::integral_cover_number;
use crate::treewidth::{min_degree_order, min_fill_order, EliminationOrder};
use cqc_runtime::Runtime;
use std::collections::BTreeSet;

/// Named width measures used for reporting and experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WidthMeasure {
    /// Treewidth: `f(X) = |X| − 1` (Definition 4).
    Treewidth,
    /// Hypertreewidth: `f(X)` = minimum number of hyperedges covering `X`
    /// (Definition 37; we use the bag-cover relaxation, see module docs of
    /// [`crate::hypertree`]).
    Hypertreewidth,
    /// Fractional hypertreewidth: `f(X) = fcn(H[X])` (Definition 41).
    FractionalHypertreewidth,
}

/// Evaluate the bag cost of `bag` under a width measure.
pub fn bag_cost(h: &Hypergraph, bag: &BTreeSet<usize>, measure: WidthMeasure) -> f64 {
    match measure {
        WidthMeasure::Treewidth => bag.len() as f64 - 1.0,
        WidthMeasure::Hypertreewidth => integral_cover_number(h, bag)
            .map(|c| c as f64)
            .unwrap_or(f64::INFINITY),
        WidthMeasure::FractionalHypertreewidth => {
            fractional_cover_number(h, bag).unwrap_or(f64::INFINITY)
        }
    }
}

/// The `f`-width of a given tree decomposition: `max_t f(B_t)`
/// (Definition 32), for an arbitrary bag-cost function.
pub fn f_width_of_decomposition<F>(td: &TreeDecomposition, mut f: F) -> f64
where
    F: FnMut(&BTreeSet<usize>) -> f64,
{
    td.bags()
        .iter()
        .map(&mut f)
        .fold(f64::NEG_INFINITY, f64::max)
}

/// The `f`-width of a decomposition under a named measure.
pub fn width_of_decomposition(
    h: &Hypergraph,
    td: &TreeDecomposition,
    measure: WidthMeasure,
) -> f64 {
    f_width_of_decomposition(td, |bag| bag_cost(h, bag, measure))
}

/// Search for a tree decomposition of small `f`-width.
///
/// Strategy:
/// * if `H` has at most `exact_limit` vertices, enumerate **all** elimination
///   orders (there are `n!`, so `exact_limit` should stay ≤ 8) and keep the
///   best decomposition;
/// * otherwise fall back to the min-degree and min-fill heuristic orders plus
///   `restarts` random orders, keeping the best.
///
/// Every elimination order yields a valid tree decomposition, so the result
/// is always a correct decomposition of `H`; optimality is guaranteed only in
/// the exhaustive regime (and even there only over decompositions induced by
/// elimination orders, which is exact for treewidth and an upper bound for
/// other measures — see DESIGN.md, substitutions).
pub fn minimise_f_width<F>(
    h: &Hypergraph,
    mut f: F,
    exact_limit: usize,
    restarts: usize,
) -> (f64, TreeDecomposition)
where
    F: FnMut(&Hypergraph, &BTreeSet<usize>) -> f64,
{
    if h.num_vertices() == 0 {
        return (0.0, TreeDecomposition::single_bag(BTreeSet::new()));
    }
    // Stream the candidates (one order held at a time, like the original
    // Heap's-algorithm loop) — the exhaustive regime enumerates n! orders,
    // so collecting them first would cost O(n!) peak memory.
    let mut best: Option<(f64, TreeDecomposition)> = None;
    for_each_candidate_order(h, exact_limit, restarts, |order| {
        let (w, td) = evaluate_order(h, order, &mut f);
        if best.as_ref().map(|(bw, _)| w < *bw).unwrap_or(true) {
            best = Some((w, td));
        }
    });
    best.expect("at least one decomposition considered")
}

/// [`minimise_f_width`] with the candidate evaluations fanned out over the
/// given runtime. Deterministic: the candidate list is identical to the
/// serial search and the reduction keeps the **first** candidate (in
/// enumeration order) attaining the minimum width, so the winning
/// decomposition is bit-identical for any thread count.
pub fn minimise_f_width_par<F>(
    h: &Hypergraph,
    f: F,
    exact_limit: usize,
    restarts: usize,
    runtime: &Runtime,
) -> (f64, TreeDecomposition)
where
    F: Fn(&Hypergraph, &BTreeSet<usize>) -> f64 + Sync,
{
    if h.num_vertices() == 0 {
        return (0.0, TreeDecomposition::single_bag(BTreeSet::new()));
    }
    // Workers fold their slice down to a single local best so at most
    // O(threads) evaluated decompositions are retained at once (the
    // exhaustive regime enumerates n! orders — buffering every scored
    // decomposition would dwarf the planning working set). Slice-local
    // first-minima merged in slice order with a strict `<` reproduce the
    // serial search's global first-minimum exactly.
    let orders = candidate_orders(h, exact_limit, restarts);
    let slice = runtime.chunk_size(orders.len());
    let slices: Vec<&[EliminationOrder]> = orders.chunks(slice).collect();
    runtime
        .par_reduce(
            &slices,
            |_, chunk| {
                let mut best: Option<(f64, TreeDecomposition)> = None;
                for order in chunk.iter() {
                    let mut g = &f;
                    let (w, td) = evaluate_order(h, order, &mut g);
                    if best.as_ref().map(|(bw, _)| w < *bw).unwrap_or(true) {
                        best = Some((w, td));
                    }
                }
                best
            },
            None::<(f64, TreeDecomposition)>,
            |acc, cand| match (acc, cand) {
                (Some((bw, btd)), Some((w, td))) => {
                    if w < bw {
                        Some((w, td))
                    } else {
                        Some((bw, btd))
                    }
                }
                (acc, None) => acc,
                (None, cand) => cand,
            },
        )
        .expect("at least one decomposition considered")
}

/// Build and score the decomposition induced by one elimination order.
fn evaluate_order<F>(
    h: &Hypergraph,
    order: &EliminationOrder,
    f: &mut F,
) -> (f64, TreeDecomposition)
where
    F: FnMut(&Hypergraph, &BTreeSet<usize>) -> f64,
{
    let mut td = order.decomposition(h);
    td.ensure_all_vertices(h);
    let td = td.contract_equal_bags();
    let w = td
        .bags()
        .iter()
        .map(|b| f(h, b))
        .fold(f64::NEG_INFINITY, f64::max);
    (w, td)
}

/// Visit the candidate elimination orders the width search considers, in a
/// fixed deterministic enumeration order shared by the serial and parallel
/// searches: every permutation (Heap's algorithm) in the exhaustive regime,
/// otherwise the min-degree and min-fill heuristic orders plus `restarts`
/// xorshift-derived random orders. Visitor-based so the serial search can
/// stream (one order alive at a time) while the parallel search collects.
fn for_each_candidate_order(
    h: &Hypergraph,
    exact_limit: usize,
    restarts: usize,
    mut visit: impl FnMut(&EliminationOrder),
) {
    let n = h.num_vertices();
    if n <= exact_limit {
        let mut perm: Vec<usize> = (0..n).collect();
        let mut c = vec![0usize; n];
        let mut scratch = EliminationOrder(perm.clone());
        visit(&scratch);
        let mut i = 0;
        while i < n {
            if c[i] < i {
                if i % 2 == 0 {
                    perm.swap(0, i);
                } else {
                    perm.swap(c[i], i);
                }
                scratch.0.copy_from_slice(&perm);
                visit(&scratch);
                c[i] += 1;
                i = 0;
            } else {
                c[i] = 0;
                i += 1;
            }
        }
    } else {
        visit(&min_degree_order(h));
        visit(&min_fill_order(h));
        // Deterministic pseudo-random restarts (xorshift; independent of
        // the engine seed so planning stays reproducible per query).
        let mut state = 0x9E3779B97F4A7C15u64;
        for _ in 0..restarts {
            let mut perm: Vec<usize> = (0..n).collect();
            for i in (1..n).rev() {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let j = (state % (i as u64 + 1)) as usize;
                perm.swap(i, j);
            }
            visit(&EliminationOrder(perm));
        }
    }
}

/// The candidate orders as a vector (the parallel search's fan-out input).
fn candidate_orders(h: &Hypergraph, exact_limit: usize, restarts: usize) -> Vec<EliminationOrder> {
    let mut orders = Vec::new();
    for_each_candidate_order(h, exact_limit, restarts, |o| orders.push(o.clone()));
    orders
}

/// Compute (an upper bound on) the width of `H` under a named measure,
/// together with a witnessing decomposition. Exhaustive for hypergraphs with
/// at most 8 vertices.
pub fn minimise_width(h: &Hypergraph, measure: WidthMeasure) -> (f64, TreeDecomposition) {
    minimise_f_width(h, |h, bag| bag_cost(h, bag, measure), 8, 32)
}

/// [`minimise_width`] with the candidate search fanned out over the given
/// runtime; bit-identical to the serial search for any thread count.
pub fn minimise_width_par(
    h: &Hypergraph,
    measure: WidthMeasure,
    runtime: &Runtime,
) -> (f64, TreeDecomposition) {
    minimise_f_width_par(h, |h, bag| bag_cost(h, bag, measure), 8, 32, runtime)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6
    }

    fn cycle(n: usize) -> Hypergraph {
        let mut h = Hypergraph::new(n);
        for i in 0..n {
            h.add_edge(&[i, (i + 1) % n]);
        }
        h
    }

    #[test]
    fn treewidth_via_f_width() {
        let h = cycle(5);
        let (w, td) = minimise_width(&h, WidthMeasure::Treewidth);
        assert!(approx(w, 2.0));
        assert!(td.validate(&h).is_ok());
    }

    #[test]
    fn fhw_of_single_hyperedge_is_one() {
        let h = Hypergraph::from_edges(4, &[&[0, 1, 2, 3]]);
        let (w, td) = minimise_width(&h, WidthMeasure::FractionalHypertreewidth);
        assert!(approx(w, 1.0));
        assert!(td.validate(&h).is_ok());
    }

    #[test]
    fn fhw_of_triangle_is_one_with_triangle_bag() {
        // the triangle has fhw 1.5 when the bag is all three vertices? No:
        // a single bag {0,1,2} has fcn 1.5; but a decomposition with bags of
        // two vertices violates edge coverage... the best is the single bag,
        // so fhw(triangle) = 1.5.
        let h = cycle(3);
        let (w, _) = minimise_width(&h, WidthMeasure::FractionalHypertreewidth);
        assert!(approx(w, 1.5), "got {w}");
    }

    #[test]
    fn fhw_of_path_is_one() {
        let h = Hypergraph::from_edges(4, &[&[0, 1], &[1, 2], &[2, 3]]);
        let (w, td) = minimise_width(&h, WidthMeasure::FractionalHypertreewidth);
        assert!(approx(w, 1.0), "got {w}");
        assert!(td.validate(&h).is_ok());
    }

    #[test]
    fn hypertreewidth_of_path_is_one() {
        let h = Hypergraph::from_edges(4, &[&[0, 1], &[1, 2], &[2, 3]]);
        let (w, _) = minimise_width(&h, WidthMeasure::Hypertreewidth);
        assert!(approx(w, 1.0));
    }

    #[test]
    fn width_hierarchy_on_small_hypergraphs() {
        // tw + 1 ≥ hw ≥ fhw for any fixed hypergraph (computed on the same
        // search space, all are upper bounds but the ordering still holds
        // pointwise per decomposition, hence after minimisation too).
        for h in [
            cycle(4),
            cycle(5),
            Hypergraph::from_edges(5, &[&[0, 1, 2], &[2, 3, 4], &[0, 4]]),
            Hypergraph::from_edges(6, &[&[0, 1, 2], &[3, 4, 5], &[0, 3], &[2, 5]]),
        ] {
            let (tw, _) = minimise_width(&h, WidthMeasure::Treewidth);
            let (hw, _) = minimise_width(&h, WidthMeasure::Hypertreewidth);
            let (fhw, _) = minimise_width(&h, WidthMeasure::FractionalHypertreewidth);
            assert!(fhw <= hw + 1e-6, "fhw {fhw} > hw {hw}");
            assert!(hw <= tw + 1.0 + 1e-6, "hw {hw} > tw+1 {}", tw + 1.0);
        }
    }

    #[test]
    fn heuristic_regime_still_valid() {
        // 12 vertices forces the heuristic path
        let h = cycle(12);
        let (w, td) = minimise_width(&h, WidthMeasure::Treewidth);
        assert!(td.validate(&h).is_ok());
        assert!(w >= 2.0 - 1e-9);
        assert!(w <= 3.0 + 1e-9);
    }

    #[test]
    fn width_of_given_decomposition() {
        let h = cycle(3);
        let td = TreeDecomposition::single_bag(h.vertices().collect());
        assert!(approx(
            width_of_decomposition(&h, &td, WidthMeasure::Treewidth),
            2.0
        ));
        assert!(approx(
            width_of_decomposition(&h, &td, WidthMeasure::FractionalHypertreewidth),
            1.5
        ));
        assert!(approx(
            width_of_decomposition(&h, &td, WidthMeasure::Hypertreewidth),
            2.0
        ));
    }

    #[test]
    fn empty_hypergraph() {
        let h = Hypergraph::new(0);
        let (w, _) = minimise_width(&h, WidthMeasure::Treewidth);
        assert_eq!(w, 0.0);
    }
}
