//! Adaptive width (Definition 33): bounds and estimates.
//!
//! The adaptive width of a hypergraph is
//! `aw(H) = sup_μ  μ-width(H)`, the supremum over fractional independent
//! sets `μ` of the `μ`-width (the `f`-width with `f(X) = μ(X)`,
//! Definition 32). It is a max-min quantity and no polynomial-time exact
//! algorithm is known; the paper only uses it as a *classification*
//! parameter (Theorem 13, Observation 15, Lemma 12, Observation 34), never
//! inside an algorithm. Accordingly this module provides
//!
//! * a certified **lower bound** — any concrete fractional independent set
//!   `μ` yields the lower bound `μ-width(H) ≤ aw(H)`; we use the uniform
//!   `μ ≡ 1/arity` of Observation 34, the maximum fractional independent
//!   set, and an alternating-maximisation heuristic that adapts `μ` to the
//!   current best decomposition;
//! * a certified **upper bound** — `aw(H) ≤ fhw(H)` because LP duality gives
//!   `μ(B) ≤ fcn(H[B])` for every bag `B` and every fractional independent
//!   set (Lemma 12 direction used in the paper);
//! * Observation 34: `tw(H) ≤ a · aw(H) − 1` for arity-`a` hypergraphs, used
//!   as a consistency check in tests and experiments.

use crate::fractional::{
    maximum_fractional_independent_set, uniform_fractional_independent_set,
    FractionalIndependentSet,
};
use crate::fwidth::{minimise_f_width, minimise_width, WidthMeasure};
use crate::hypergraph::Hypergraph;
use crate::lp::{ConstraintOp, Direction, LinearProgram};
use std::collections::BTreeSet;

/// Lower and upper bounds on the adaptive width of a hypergraph.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveWidthBounds {
    /// A certified lower bound (the `μ`-width of a concrete fractional
    /// independent set).
    pub lower: f64,
    /// A certified upper bound (`fhw(H)`, possibly itself an upper bound when
    /// the decomposition search is heuristic).
    pub upper: f64,
    /// The fractional independent set witnessing the lower bound.
    pub witness: FractionalIndependentSet,
}

/// The `μ`-width of `H` for a fixed fractional independent set `μ`:
/// `min_{(T,B)} max_t μ(B_t)` (Definition 32 with `f = μ`).
///
/// Exhaustive over elimination orders for ≤ 8 vertices, heuristic beyond.
pub fn mu_width(h: &Hypergraph, mu: &FractionalIndependentSet) -> f64 {
    let (w, _) = minimise_f_width(
        h,
        |_, bag: &BTreeSet<usize>| bag.iter().map(|&v| mu.weights[v]).sum::<f64>(),
        8,
        32,
    );
    w
}

/// Given a fixed tree decomposition (represented by its bags), find the
/// fractional independent set maximising the minimum possible `max_t μ(B_t)`
/// — i.e. the best response of the adversary to this decomposition. Solved
/// as an LP: maximise `z` subject to `μ(B_t) ≥ z`... note the adversary wants
/// to *maximise the maximum* bag weight, which decomposes: the best response
/// is simply to maximise `μ(B_t*)` for the single best bag. We therefore
/// maximise, over bags, the maximum feasible `μ(B_t)`.
fn best_response_mu(h: &Hypergraph, bags: &[BTreeSet<usize>]) -> (f64, FractionalIndependentSet) {
    let n = h.num_vertices();
    let mut best_val = 0.0;
    let mut best = uniform_fractional_independent_set(h);
    for bag in bags {
        if bag.is_empty() {
            continue;
        }
        let mut lp = LinearProgram::new(n, Direction::Maximize);
        let mut obj = vec![0.0; n];
        for &v in bag {
            obj[v] = 1.0;
        }
        lp.set_objective(&obj);
        for e in h.edges() {
            let mut row = vec![0.0; n];
            for &v in e {
                row[v] = 1.0;
            }
            lp.add_constraint(&row, ConstraintOp::Le, 1.0)
                .expect("dims");
        }
        for v in 0..n {
            let mut row = vec![0.0; n];
            row[v] = 1.0;
            lp.add_constraint(&row, ConstraintOp::Le, 1.0)
                .expect("dims");
        }
        if let Ok(sol) = lp.solve() {
            if sol.objective > best_val {
                best_val = sol.objective;
                best = FractionalIndependentSet {
                    value: sol.values.iter().sum(),
                    weights: sol.values,
                };
            }
        }
    }
    (best_val, best)
}

/// Compute lower and upper bounds on `aw(H)`.
///
/// The lower bound is the best `μ`-width over: the uniform independent set
/// (Observation 34), the maximum fractional independent set, and `rounds`
/// iterations of alternating maximisation (adversary best-responds to the
/// current optimal decomposition, then the decomposition re-optimises).
pub fn adaptive_width_bounds(h: &Hypergraph, rounds: usize) -> AdaptiveWidthBounds {
    // Upper bound: fhw(H) (possibly an over-estimate when heuristic, still a
    // valid upper bound on aw because μ(B) ≤ fcn(H[B]) pointwise).
    let (fhw, _) = minimise_width(h, WidthMeasure::FractionalHypertreewidth);
    let upper = fhw;

    // Candidate μ's.
    let mut candidates = vec![
        uniform_fractional_independent_set(h),
        maximum_fractional_independent_set(h),
    ];

    let mut best_lower = 0.0f64;
    let mut best_witness = candidates[0].clone();
    let mut current_mu = candidates.remove(0);
    for round in 0..=rounds {
        // Evaluate all pending candidates.
        for mu in std::mem::take(&mut candidates) {
            let w = mu_width(h, &mu);
            if w > best_lower {
                best_lower = w;
                best_witness = mu.clone();
            }
        }
        let w = mu_width(h, &current_mu);
        if w > best_lower {
            best_lower = w;
            best_witness = current_mu.clone();
        }
        if round == rounds {
            break;
        }
        // Adversary best-response to the decomposition optimal for current_mu.
        let (_, td) = minimise_f_width(
            h,
            |_, bag: &BTreeSet<usize>| bag.iter().map(|&v| current_mu.weights[v]).sum::<f64>(),
            8,
            32,
        );
        let (_, response) = best_response_mu(h, td.bags());
        current_mu = response;
    }

    // Numerical guard: a lower bound should never exceed the upper bound by
    // more than LP tolerance; clamp for downstream consumers.
    let lower = best_lower.min(upper + 1e-6);
    AdaptiveWidthBounds {
        lower,
        upper,
        witness: best_witness,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::treewidth::treewidth_exact;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6
    }

    fn path(n: usize) -> Hypergraph {
        let mut h = Hypergraph::new(n);
        for i in 0..n - 1 {
            h.add_edge(&[i, i + 1]);
        }
        h
    }

    fn clique(n: usize) -> Hypergraph {
        let mut h = Hypergraph::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                h.add_edge(&[i, j]);
            }
        }
        h
    }

    #[test]
    fn bounds_are_ordered() {
        for h in [
            path(5),
            clique(4),
            Hypergraph::from_edges(4, &[&[0, 1, 2, 3]]),
            Hypergraph::from_edges(5, &[&[0, 1, 2], &[2, 3, 4], &[0, 4]]),
        ] {
            let b = adaptive_width_bounds(&h, 2);
            assert!(
                b.lower <= b.upper + 1e-6,
                "lower {} > upper {}",
                b.lower,
                b.upper
            );
            assert!(b.lower >= 0.0);
        }
    }

    #[test]
    fn single_hyperedge_has_adaptive_width_one() {
        let h = Hypergraph::from_edges(4, &[&[0, 1, 2, 3]]);
        let b = adaptive_width_bounds(&h, 2);
        // fhw = 1 so aw ≤ 1; and any single vertex gives μ-width ≥ 1 when μ(v) = 1?
        // μ(v)=1 on one vertex is a valid fractional independent set (edge sum ≤ 1),
        // and every decomposition has that vertex in some bag → μ-width ≥ 1.
        assert!(approx(b.upper, 1.0));
        assert!(b.lower >= 1.0 - 1e-6);
    }

    #[test]
    fn path_has_adaptive_width_one() {
        let h = path(5);
        let b = adaptive_width_bounds(&h, 2);
        assert!(b.upper <= 1.0 + 1e-6);
        assert!(b.lower >= 1.0 - 1e-6);
    }

    #[test]
    fn observation_34_tw_le_arity_times_aw() {
        // tw(H) ≤ a · aw(H) − 1; since we only have bounds, check
        // tw(H) ≤ a · upper(aw) − 1 + tolerance.
        for h in [
            path(6),
            clique(4),
            Hypergraph::from_edges(5, &[&[0, 1, 2], &[2, 3, 4]]),
        ] {
            let (tw, _) = treewidth_exact(&h);
            let a = h.arity();
            let b = adaptive_width_bounds(&h, 1);
            assert!(
                (tw as f64) <= a as f64 * b.upper - 1.0 + 1e-6,
                "tw {} vs a*aw_upper-1 = {}",
                tw,
                a as f64 * b.upper - 1.0
            );
        }
    }

    #[test]
    fn clique_adaptive_width_grows() {
        // For K_n (arity 2), aw = n/2 asymptotically (uniform μ = 1/2 forces
        // a bag of all vertices). Check K4: lower bound ≥ 2 from μ ≡ 1/2.
        let h = clique(4);
        let b = adaptive_width_bounds(&h, 2);
        assert!(b.lower >= 2.0 - 1e-6, "lower bound {}", b.lower);
    }

    #[test]
    fn mu_width_of_zero_mu_is_zero() {
        let h = path(4);
        let mu = FractionalIndependentSet {
            weights: vec![0.0; 4],
            value: 0.0,
        };
        assert!(approx(mu_width(&h, &mu), 0.0));
    }

    #[test]
    fn witness_is_feasible() {
        let h = clique(4);
        let b = adaptive_width_bounds(&h, 2);
        for e in h.edges() {
            let s: f64 = e.iter().map(|&v| b.witness.weights[v]).sum();
            assert!(s <= 1.0 + 1e-6);
        }
    }
}
