//! Treewidth computation: exact (small hypergraphs) and heuristic.
//!
//! The treewidth `tw(H)` of a hypergraph is the minimum width over all tree
//! decompositions (Definition 4). For the *query* hypergraphs `H(ϕ)` arising
//! in the paper the number of vertices equals the number of query variables,
//! which is parameter-sized, so an exact exponential algorithm (dynamic
//! programming over vertex subsets, following Bodlaender–Fomin–Koster–
//! Kratsch–Thilikos) is perfectly adequate. Min-degree and min-fill
//! elimination heuristics are provided for larger hypergraphs (e.g. database
//! Gaifman graphs used in tests).

use crate::decomposition::TreeDecomposition;
use crate::hypergraph::Hypergraph;
use std::collections::BTreeSet;

/// An elimination order of the vertices of a hypergraph.
///
/// Every elimination order induces a tree decomposition (see
/// [`EliminationOrder::decomposition`]); conversely every tree decomposition
/// of width `w` is induced by some order of width `w`, so searching over
/// orders is complete for treewidth.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EliminationOrder(pub Vec<usize>);

impl EliminationOrder {
    /// The width of the order: the maximum, over eliminated vertices, of the
    /// number of not-yet-eliminated neighbours at elimination time (in the
    /// progressively filled-in primal graph).
    pub fn width(&self, h: &Hypergraph) -> usize {
        let n = h.num_vertices();
        let mut adj: Vec<BTreeSet<usize>> = h.primal_graph();
        let mut eliminated = vec![false; n];
        let mut width = 0usize;
        for &v in &self.0 {
            let neigh: Vec<usize> = adj[v].iter().copied().filter(|&u| !eliminated[u]).collect();
            width = width.max(neigh.len());
            // fill in a clique among the remaining neighbours
            for i in 0..neigh.len() {
                for j in (i + 1)..neigh.len() {
                    adj[neigh[i]].insert(neigh[j]);
                    adj[neigh[j]].insert(neigh[i]);
                }
            }
            eliminated[v] = true;
        }
        width
    }

    /// The tree decomposition induced by this elimination order.
    ///
    /// Each vertex `v` contributes a bag `{v} ∪ N⁺(v)` where `N⁺(v)` are the
    /// later-eliminated neighbours in the filled-in graph; the bag of `v` is
    /// attached to the bag of the earliest-eliminated vertex of `N⁺(v)`.
    pub fn decomposition(&self, h: &Hypergraph) -> TreeDecomposition {
        let n = h.num_vertices();
        assert_eq!(self.0.len(), n, "elimination order must cover all vertices");
        if n == 0 {
            return TreeDecomposition::single_bag(BTreeSet::new());
        }
        let mut adj: Vec<BTreeSet<usize>> = h.primal_graph();
        let mut position = vec![0usize; n];
        for (i, &v) in self.0.iter().enumerate() {
            position[v] = i;
        }
        // Compute bags in elimination order with fill-in.
        let mut eliminated = vec![false; n];
        let mut bags: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
        for &v in &self.0 {
            let neigh: Vec<usize> = adj[v].iter().copied().filter(|&u| !eliminated[u]).collect();
            let mut bag: BTreeSet<usize> = neigh.iter().copied().collect();
            bag.insert(v);
            bags[v] = bag;
            for i in 0..neigh.len() {
                for j in (i + 1)..neigh.len() {
                    adj[neigh[i]].insert(neigh[j]);
                    adj[neigh[j]].insert(neigh[i]);
                }
            }
            eliminated[v] = true;
        }
        // The root corresponds to the last eliminated vertex.
        let root_vertex = *self.0.last().unwrap();
        let mut td = TreeDecomposition::with_root(bags[root_vertex].clone());
        let mut node_of = vec![usize::MAX; n];
        node_of[root_vertex] = 0;
        // Attach bags from later-eliminated to earlier-eliminated.
        for &v in self.0.iter().rev().skip(1) {
            // parent vertex: the earliest-eliminated vertex among the bag
            // members eliminated after v (equivalently, minimum position > pos(v)).
            let parent_vertex = bags[v]
                .iter()
                .copied()
                .filter(|&u| u != v && position[u] > position[v])
                .min_by_key(|&u| position[u]);
            let parent_node = match parent_vertex {
                Some(u) => node_of[u],
                None => node_of[root_vertex],
            };
            let id = td.add_child(parent_node, bags[v].clone());
            node_of[v] = id;
        }
        td
    }
}

/// A min-degree elimination order (greedy heuristic).
pub fn min_degree_order(h: &Hypergraph) -> EliminationOrder {
    greedy_order(h, |adj, eliminated, v| {
        adj[v].iter().filter(|&&u| !eliminated[u]).count()
    })
}

/// A min-fill elimination order (greedy heuristic): eliminate the vertex
/// whose elimination introduces the fewest fill-in edges.
pub fn min_fill_order(h: &Hypergraph) -> EliminationOrder {
    greedy_order(h, |adj, eliminated, v| {
        let neigh: Vec<usize> = adj[v].iter().copied().filter(|&u| !eliminated[u]).collect();
        let mut fill = 0usize;
        for i in 0..neigh.len() {
            for j in (i + 1)..neigh.len() {
                if !adj[neigh[i]].contains(&neigh[j]) {
                    fill += 1;
                }
            }
        }
        fill
    })
}

fn greedy_order<F>(h: &Hypergraph, score: F) -> EliminationOrder
where
    F: Fn(&[BTreeSet<usize>], &[bool], usize) -> usize,
{
    let n = h.num_vertices();
    let mut adj = h.primal_graph();
    let mut eliminated = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for _ in 0..n {
        let v = (0..n)
            .filter(|&v| !eliminated[v])
            .min_by_key(|&v| score(&adj, &eliminated, v))
            .expect("vertices remain");
        let neigh: Vec<usize> = adj[v].iter().copied().filter(|&u| !eliminated[u]).collect();
        for i in 0..neigh.len() {
            for j in (i + 1)..neigh.len() {
                adj[neigh[i]].insert(neigh[j]);
                adj[neigh[j]].insert(neigh[i]);
            }
        }
        eliminated[v] = true;
        order.push(v);
    }
    EliminationOrder(order)
}

/// An upper bound on `tw(H)` together with a witnessing decomposition,
/// obtained from the better of the min-degree and min-fill heuristics.
pub fn treewidth_upper_bound(h: &Hypergraph) -> (usize, TreeDecomposition) {
    let candidates = [min_degree_order(h), min_fill_order(h)];
    let best = candidates
        .into_iter()
        .min_by_key(|o| o.width(h))
        .expect("two candidates");
    let w = best.width(h);
    let mut td = best.decomposition(h);
    td.ensure_all_vertices(h);
    (w, td)
}

/// Exact treewidth via dynamic programming over vertex subsets
/// (`O(2^n · n²)` time, `O(2^n)` space). Suitable for `n ≤ ~20`.
///
/// Returns the treewidth and an optimal tree decomposition.
///
/// # Panics
/// Panics if `h` has more than 24 vertices (use
/// [`treewidth_upper_bound`] instead).
pub fn treewidth_exact(h: &Hypergraph) -> (usize, TreeDecomposition) {
    let n = h.num_vertices();
    assert!(n <= 24, "exact treewidth is limited to 24 vertices");
    if n == 0 {
        return (0, TreeDecomposition::single_bag(BTreeSet::new()));
    }
    let adj = h.primal_graph();
    let adj_mask: Vec<u32> = adj
        .iter()
        .map(|s| s.iter().fold(0u32, |m, &v| m | (1 << v)))
        .collect();

    // q(s, v): number of vertices outside s ∪ {v} adjacent to the connected
    // component of v in G[s ∪ {v}] — this is the degree of v at elimination
    // time if the set s was eliminated before v.
    let q = |s: u32, v: usize| -> u32 {
        // BFS over s ∪ {v} starting at v, collect outside-neighbours.
        let mut visited: u32 = 1 << v;
        let mut stack = vec![v];
        let mut outside: u32 = 0;
        while let Some(u) = stack.pop() {
            let nb = adj_mask[u];
            outside |= nb & !s & !(1u32 << v);
            let mut inside = nb & s & !visited;
            while inside != 0 {
                let w = inside.trailing_zeros() as usize;
                inside &= inside - 1;
                visited |= 1 << w;
                stack.push(w);
            }
        }
        (outside & !(1u32 << v)).count_ones()
    };

    let full: u32 = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };
    let size = 1usize << n;
    // dp[s] = minimal width achievable when the vertices in s are eliminated first.
    let mut dp = vec![u32::MAX; size];
    let mut choice = vec![usize::MAX; size];
    dp[0] = 0;
    for s in 0..size {
        if dp[s] == u32::MAX {
            continue;
        }
        let s32 = s as u32;
        let mut remaining = full & !s32;
        while remaining != 0 {
            let v = remaining.trailing_zeros() as usize;
            remaining &= remaining - 1;
            let cost = dp[s].max(q(s32, v));
            let ns = s | (1usize << v);
            if cost < dp[ns] {
                dp[ns] = cost;
                choice[ns] = v;
            }
        }
    }
    let tw = dp[full as usize] as usize;

    // Reconstruct an optimal elimination order.
    let mut order = Vec::with_capacity(n);
    let mut s = full as usize;
    while s != 0 {
        let v = choice[s];
        order.push(v);
        s &= !(1usize << v);
    }
    order.reverse();
    let ord = EliminationOrder(order);
    debug_assert_eq!(ord.width(h), tw);
    let mut td = ord.decomposition(h);
    td.ensure_all_vertices(h);
    (tw, td)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Hypergraph {
        let mut h = Hypergraph::new(n);
        for i in 0..n.saturating_sub(1) {
            h.add_edge(&[i, i + 1]);
        }
        h
    }

    fn clique(n: usize) -> Hypergraph {
        let mut h = Hypergraph::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                h.add_edge(&[i, j]);
            }
        }
        h
    }

    fn cycle(n: usize) -> Hypergraph {
        let mut h = Hypergraph::new(n);
        for i in 0..n {
            h.add_edge(&[i, (i + 1) % n]);
        }
        h
    }

    fn grid(rows: usize, cols: usize) -> Hypergraph {
        let mut h = Hypergraph::new(rows * cols);
        let id = |r: usize, c: usize| r * cols + c;
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    h.add_edge(&[id(r, c), id(r, c + 1)]);
                }
                if r + 1 < rows {
                    h.add_edge(&[id(r, c), id(r + 1, c)]);
                }
            }
        }
        h
    }

    #[test]
    fn exact_treewidth_of_paths_is_one() {
        for n in 2..7 {
            let (tw, td) = treewidth_exact(&path(n));
            assert_eq!(tw, 1, "path of {n} vertices");
            assert!(td.validate(&path(n)).is_ok());
            assert_eq!(td.width(), 1);
        }
    }

    #[test]
    fn exact_treewidth_of_cliques() {
        for n in 2..7 {
            let (tw, td) = treewidth_exact(&clique(n));
            assert_eq!(tw, n - 1);
            assert!(td.validate(&clique(n)).is_ok());
        }
    }

    #[test]
    fn exact_treewidth_of_cycles_is_two() {
        for n in 3..8 {
            let (tw, td) = treewidth_exact(&cycle(n));
            assert_eq!(tw, 2, "cycle of {n} vertices");
            assert!(td.validate(&cycle(n)).is_ok());
        }
    }

    #[test]
    fn exact_treewidth_of_grids() {
        // tw of a k x m grid (k ≤ m) is k
        let (tw, td) = treewidth_exact(&grid(2, 3));
        assert_eq!(tw, 2);
        assert!(td.validate(&grid(2, 3)).is_ok());
        let (tw, _) = treewidth_exact(&grid(3, 3));
        assert_eq!(tw, 3);
        let (tw, _) = treewidth_exact(&grid(3, 4));
        assert_eq!(tw, 3);
    }

    #[test]
    fn exact_treewidth_with_hyperedges() {
        // one big hyperedge forces a clique in the primal graph
        let h = Hypergraph::from_edges(5, &[&[0, 1, 2, 3], &[3, 4]]);
        let (tw, td) = treewidth_exact(&h);
        assert_eq!(tw, 3);
        assert!(td.validate(&h).is_ok());
    }

    #[test]
    fn exact_treewidth_of_edgeless_graph() {
        let h = Hypergraph::new(4);
        let (tw, td) = treewidth_exact(&h);
        assert_eq!(tw, 0);
        assert!(td.validate(&h).is_ok());
    }

    #[test]
    fn heuristics_give_valid_upper_bounds() {
        for h in [path(8), cycle(8), clique(5), grid(3, 4)] {
            let (w, td) = treewidth_upper_bound(&h);
            assert!(td.validate(&h).is_ok());
            assert_eq!(td.width(), w as isize);
            let (exact, _) = treewidth_exact(&h);
            assert!(w >= exact);
        }
    }

    #[test]
    fn heuristics_exact_on_trees_and_cliques() {
        let (w, _) = treewidth_upper_bound(&path(10));
        assert_eq!(w, 1);
        let (w, _) = treewidth_upper_bound(&clique(6));
        assert_eq!(w, 5);
    }

    #[test]
    fn elimination_order_width_matches_decomposition_width() {
        let h = grid(3, 3);
        for order in [min_degree_order(&h), min_fill_order(&h)] {
            let w = order.width(&h);
            let td = order.decomposition(&h);
            assert!(td.validate(&h).is_ok());
            assert_eq!(td.width(), w as isize);
        }
    }

    #[test]
    fn isolated_vertices_are_covered() {
        let mut h = Hypergraph::new(5);
        h.add_edge(&[0, 1]);
        // vertices 2, 3, 4 are isolated
        let (tw, td) = treewidth_exact(&h);
        assert_eq!(tw, 1);
        assert!(td.validate(&h).is_ok());
        let (w, td) = treewidth_upper_bound(&h);
        assert_eq!(w, 1);
        assert!(td.validate(&h).is_ok());
    }
}
