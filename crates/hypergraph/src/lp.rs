//! A small dense linear-programming solver (two-phase primal simplex).
//!
//! Width measures such as fractional edge cover number (Definition 39),
//! fractional hypertreewidth (Definition 41) and adaptive width
//! (Definition 33) are defined through linear programs. The instances arising
//! from query hypergraphs are tiny (a handful of variables and constraints),
//! so a dense tableau simplex with Bland's anti-cycling rule is entirely
//! adequate and avoids any external dependency.

use std::fmt;

/// Comparison operator of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintOp {
    /// `⟨a, x⟩ ≤ b`
    Le,
    /// `⟨a, x⟩ ≥ b`
    Ge,
    /// `⟨a, x⟩ = b`
    Eq,
}

/// Optimisation direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Minimise the objective.
    Minimize,
    /// Maximise the objective.
    Maximize,
}

/// Errors from the LP solver.
#[derive(Debug, Clone, PartialEq)]
pub enum LpError {
    /// The feasible region is empty.
    Infeasible,
    /// The objective is unbounded in the optimisation direction.
    Unbounded,
    /// A constraint row has the wrong number of coefficients.
    DimensionMismatch {
        /// expected number of variables
        expected: usize,
        /// provided number of coefficients
        got: usize,
    },
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "linear program is infeasible"),
            LpError::Unbounded => write!(f, "linear program is unbounded"),
            LpError::DimensionMismatch { expected, got } => {
                write!(f, "constraint has {got} coefficients, expected {expected}")
            }
        }
    }
}

impl std::error::Error for LpError {}

/// An optimal solution of a linear program.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Optimal objective value.
    pub objective: f64,
    /// Optimal assignment to the variables (all non-negative).
    pub values: Vec<f64>,
}

/// A linear program over non-negative variables.
///
/// ```
/// use cqc_hypergraph::lp::{LinearProgram, ConstraintOp, Direction};
/// // minimise x0 + x1  s.t.  x0 + x1 ≥ 1,  x0 ≥ 0, x1 ≥ 0
/// let mut lp = LinearProgram::new(2, Direction::Minimize);
/// lp.set_objective(&[1.0, 1.0]);
/// lp.add_constraint(&[1.0, 1.0], ConstraintOp::Ge, 1.0).unwrap();
/// let sol = lp.solve().unwrap();
/// assert!((sol.objective - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct LinearProgram {
    num_vars: usize,
    direction: Direction,
    objective: Vec<f64>,
    constraints: Vec<(Vec<f64>, ConstraintOp, f64)>,
}

const EPS: f64 = 1e-9;

impl LinearProgram {
    /// Create a program with `num_vars` non-negative variables.
    pub fn new(num_vars: usize, direction: Direction) -> Self {
        LinearProgram {
            num_vars,
            direction,
            objective: vec![0.0; num_vars],
            constraints: Vec::new(),
        }
    }

    /// Set the objective coefficients.
    pub fn set_objective(&mut self, coeffs: &[f64]) {
        assert_eq!(coeffs.len(), self.num_vars);
        self.objective = coeffs.to_vec();
    }

    /// Add a constraint `⟨coeffs, x⟩ op rhs`.
    pub fn add_constraint(
        &mut self,
        coeffs: &[f64],
        op: ConstraintOp,
        rhs: f64,
    ) -> Result<(), LpError> {
        if coeffs.len() != self.num_vars {
            return Err(LpError::DimensionMismatch {
                expected: self.num_vars,
                got: coeffs.len(),
            });
        }
        self.constraints.push((coeffs.to_vec(), op, rhs));
        Ok(())
    }

    /// Solve the program with the two-phase simplex method.
    pub fn solve(&self) -> Result<LpSolution, LpError> {
        // Convert to standard form: minimise c·x subject to Ax = b, x ≥ 0,
        // with slack/surplus variables; then phase-1 with artificials.
        let n = self.num_vars;
        let m = self.constraints.len();

        // Count auxiliary variables.
        let mut num_slack = 0;
        for (_, op, _) in &self.constraints {
            match op {
                ConstraintOp::Le | ConstraintOp::Ge => num_slack += 1,
                ConstraintOp::Eq => {}
            }
        }
        let total_structural = n + num_slack;
        let total = total_structural + m; // one artificial per row

        // Build rows, making rhs non-negative.
        let mut a = vec![vec![0.0f64; total]; m];
        let mut b = vec![0.0f64; m];
        let mut slack_idx = n;
        for (i, (coeffs, op, rhs)) in self.constraints.iter().enumerate() {
            let mut row: Vec<f64> = coeffs.clone();
            row.resize(total, 0.0);
            let mut rhs = *rhs;
            let mut op = *op;
            if rhs < 0.0 {
                for c in row.iter_mut().take(n) {
                    *c = -*c;
                }
                rhs = -rhs;
                op = match op {
                    ConstraintOp::Le => ConstraintOp::Ge,
                    ConstraintOp::Ge => ConstraintOp::Le,
                    ConstraintOp::Eq => ConstraintOp::Eq,
                };
            }
            match op {
                ConstraintOp::Le => {
                    row[slack_idx] = 1.0;
                    slack_idx += 1;
                }
                ConstraintOp::Ge => {
                    row[slack_idx] = -1.0;
                    slack_idx += 1;
                }
                ConstraintOp::Eq => {}
            }
            // artificial variable for this row
            row[total_structural + i] = 1.0;
            a[i] = row;
            b[i] = rhs;
        }

        // Objective in minimisation form.
        let mut c = vec![0.0f64; total];
        for (cj, obj) in c.iter_mut().zip(&self.objective) {
            *cj = match self.direction {
                Direction::Minimize => *obj,
                Direction::Maximize => -*obj,
            };
        }

        // Basis: start with the artificials.
        let mut basis: Vec<usize> = (0..m).map(|i| total_structural + i).collect();

        // Phase 1: minimise the sum of artificials.
        let phase1_c: Vec<f64> = (0..total)
            .map(|j| if j >= total_structural { 1.0 } else { 0.0 })
            .collect();
        let phase1_obj = simplex(&mut a, &mut b, &phase1_c, &mut basis)?;
        if phase1_obj > 1e-6 {
            return Err(LpError::Infeasible);
        }
        // Drive artificials out of the basis if possible (degenerate case).
        for i in 0..m {
            if basis[i] >= total_structural {
                if let Some(j) = (0..total_structural).find(|&j| a[i][j].abs() > EPS) {
                    pivot(&mut a, &mut b, &mut basis, i, j);
                }
            }
        }

        // Phase 2: original objective, artificial columns forbidden.
        let mut phase2_c = c.clone();
        for coef in phase2_c.iter_mut().skip(total_structural) {
            *coef = 0.0;
        }
        // Forbid re-entering artificials by removing their columns.
        for row in a.iter_mut() {
            row.truncate(total_structural);
        }
        phase2_c.truncate(total_structural);
        for bi in basis.iter_mut() {
            if *bi >= total_structural {
                // Row is all-zero over structural columns (redundant constraint);
                // keep the artificial marker but it will never be selected.
                *bi = usize::MAX;
            }
        }
        // Remove redundant rows whose basis is the placeholder.
        let keep: Vec<usize> = (0..a.len()).filter(|&i| basis[i] != usize::MAX).collect();
        let a2: Vec<Vec<f64>> = keep.iter().map(|&i| a[i].clone()).collect();
        let b2: Vec<f64> = keep.iter().map(|&i| b[i]).collect();
        let basis2: Vec<usize> = keep.iter().map(|&i| basis[i]).collect();
        let mut a = a2;
        let mut b = b2;
        let mut basis = basis2;

        let obj = simplex(&mut a, &mut b, &phase2_c, &mut basis)?;

        let mut values = vec![0.0; self.num_vars];
        for (i, &bi) in basis.iter().enumerate() {
            if bi < self.num_vars {
                values[bi] = b[i];
            }
        }
        let objective = match self.direction {
            Direction::Minimize => obj,
            Direction::Maximize => -obj,
        };
        Ok(LpSolution { objective, values })
    }
}

/// Run the simplex method minimising `c·x` on the tableau `(a, b)` with the
/// given starting `basis`. Returns the optimal objective value. Uses Bland's
/// rule to guarantee termination.
fn simplex(
    a: &mut [Vec<f64>],
    b: &mut [f64],
    c: &[f64],
    basis: &mut [usize],
) -> Result<f64, LpError> {
    let m = a.len();
    if m == 0 {
        return Ok(0.0);
    }
    let ncols = a[0].len();
    // Ensure the tableau is in canonical form w.r.t. the basis.
    for i in 0..m {
        let bi = basis[i];
        if bi >= ncols {
            continue;
        }
        let piv = a[i][bi];
        if (piv - 1.0).abs() > EPS && piv.abs() > EPS {
            let inv = 1.0 / piv;
            for x in a[i].iter_mut() {
                *x *= inv;
            }
            b[i] *= inv;
        }
    }

    let mut iterations = 0usize;
    let max_iterations = 20_000 + 200 * (m + ncols);
    loop {
        iterations += 1;
        if iterations > max_iterations {
            // Should not happen with Bland's rule; treat as numerically stuck.
            break;
        }
        // Reduced costs: cj - c_B * B^{-1} A_j (tableau already reduced).
        let mut reduced = vec![0.0f64; ncols];
        for (j, red) in reduced.iter_mut().enumerate() {
            let mut z = 0.0;
            for i in 0..m {
                let bi = basis[i];
                if bi < ncols {
                    z += c[bi] * a[i][j];
                }
            }
            *red = c[j] - z;
        }
        // Bland's rule: smallest index with negative reduced cost.
        let entering = (0..ncols).find(|&j| reduced[j] < -EPS);
        let entering = match entering {
            Some(j) => j,
            None => break, // optimal
        };
        // Ratio test (Bland: smallest basis index among ties).
        let mut leaving: Option<usize> = None;
        let mut best_ratio = f64::INFINITY;
        for i in 0..m {
            if a[i][entering] > EPS {
                let ratio = b[i] / a[i][entering];
                if ratio < best_ratio - EPS
                    || (ratio < best_ratio + EPS
                        && leaving.map(|l| basis[i] < basis[l]).unwrap_or(true))
                {
                    best_ratio = ratio;
                    leaving = Some(i);
                }
            }
        }
        let leaving = match leaving {
            Some(i) => i,
            None => return Err(LpError::Unbounded),
        };
        pivot(a, b, basis, leaving, entering);
    }

    let mut obj = 0.0;
    for i in 0..m {
        let bi = basis[i];
        if bi < c.len() {
            obj += c[bi] * b[i];
        }
    }
    Ok(obj)
}

fn pivot(a: &mut [Vec<f64>], b: &mut [f64], basis: &mut [usize], row: usize, col: usize) {
    let m = a.len();
    let piv = a[row][col];
    debug_assert!(piv.abs() > EPS);
    let inv = 1.0 / piv;
    for x in a[row].iter_mut() {
        *x *= inv;
    }
    b[row] *= inv;
    for i in 0..m {
        if i != row && a[i][col].abs() > EPS {
            let factor = a[i][col];
            let pivot_row = a[row].clone();
            for (x, p) in a[i].iter_mut().zip(pivot_row.iter()) {
                *x -= factor * p;
            }
            b[i] -= factor * b[row];
        }
    }
    basis[row] = col;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6
    }

    #[test]
    fn simple_min_cover() {
        // minimise x0 + x1 subject to x0 + x1 ≥ 1
        let mut lp = LinearProgram::new(2, Direction::Minimize);
        lp.set_objective(&[1.0, 1.0]);
        lp.add_constraint(&[1.0, 1.0], ConstraintOp::Ge, 1.0)
            .unwrap();
        let sol = lp.solve().unwrap();
        assert!(approx(sol.objective, 1.0));
        assert!(approx(sol.values.iter().sum::<f64>(), 1.0));
    }

    #[test]
    fn triangle_fractional_cover() {
        // Fractional edge cover of the triangle: three edges {0,1},{1,2},{0,2};
        // each vertex must be covered; optimum 3/2 with γ ≡ 1/2.
        let mut lp = LinearProgram::new(3, Direction::Minimize);
        lp.set_objective(&[1.0, 1.0, 1.0]);
        // vertex 0 in edges 0 and 2
        lp.add_constraint(&[1.0, 0.0, 1.0], ConstraintOp::Ge, 1.0)
            .unwrap();
        // vertex 1 in edges 0 and 1
        lp.add_constraint(&[1.0, 1.0, 0.0], ConstraintOp::Ge, 1.0)
            .unwrap();
        // vertex 2 in edges 1 and 2
        lp.add_constraint(&[0.0, 1.0, 1.0], ConstraintOp::Ge, 1.0)
            .unwrap();
        let sol = lp.solve().unwrap();
        assert!(approx(sol.objective, 1.5), "got {}", sol.objective);
    }

    #[test]
    fn maximisation_with_upper_bounds() {
        // maximise x0 + x1 s.t. x0 ≤ 2, x1 ≤ 3, x0 + x1 ≤ 4  → 4
        let mut lp = LinearProgram::new(2, Direction::Maximize);
        lp.set_objective(&[1.0, 1.0]);
        lp.add_constraint(&[1.0, 0.0], ConstraintOp::Le, 2.0)
            .unwrap();
        lp.add_constraint(&[0.0, 1.0], ConstraintOp::Le, 3.0)
            .unwrap();
        lp.add_constraint(&[1.0, 1.0], ConstraintOp::Le, 4.0)
            .unwrap();
        let sol = lp.solve().unwrap();
        assert!(approx(sol.objective, 4.0));
    }

    #[test]
    fn equality_constraints() {
        // minimise 2x0 + x1 s.t. x0 + x1 = 3, x0 ≥ 1 → x0 = 1, x1 = 2, obj 4
        let mut lp = LinearProgram::new(2, Direction::Minimize);
        lp.set_objective(&[2.0, 1.0]);
        lp.add_constraint(&[1.0, 1.0], ConstraintOp::Eq, 3.0)
            .unwrap();
        lp.add_constraint(&[1.0, 0.0], ConstraintOp::Ge, 1.0)
            .unwrap();
        let sol = lp.solve().unwrap();
        assert!(approx(sol.objective, 4.0));
        assert!(approx(sol.values[0], 1.0));
        assert!(approx(sol.values[1], 2.0));
    }

    #[test]
    fn infeasible_program() {
        let mut lp = LinearProgram::new(1, Direction::Minimize);
        lp.set_objective(&[1.0]);
        lp.add_constraint(&[1.0], ConstraintOp::Le, 1.0).unwrap();
        lp.add_constraint(&[1.0], ConstraintOp::Ge, 2.0).unwrap();
        assert_eq!(lp.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn unbounded_program() {
        let mut lp = LinearProgram::new(1, Direction::Maximize);
        lp.set_objective(&[1.0]);
        lp.add_constraint(&[1.0], ConstraintOp::Ge, 0.0).unwrap();
        assert_eq!(lp.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn dimension_mismatch() {
        let mut lp = LinearProgram::new(2, Direction::Minimize);
        assert!(matches!(
            lp.add_constraint(&[1.0], ConstraintOp::Ge, 1.0),
            Err(LpError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn negative_rhs_handled() {
        // minimise x0 s.t. -x0 ≤ -2  (i.e. x0 ≥ 2)
        let mut lp = LinearProgram::new(1, Direction::Minimize);
        lp.set_objective(&[1.0]);
        lp.add_constraint(&[-1.0], ConstraintOp::Le, -2.0).unwrap();
        let sol = lp.solve().unwrap();
        assert!(approx(sol.objective, 2.0));
    }

    #[test]
    fn degenerate_redundant_constraints() {
        // x0 = 1 stated twice plus x0 ≥ 1; should still solve.
        let mut lp = LinearProgram::new(1, Direction::Minimize);
        lp.set_objective(&[1.0]);
        lp.add_constraint(&[1.0], ConstraintOp::Eq, 1.0).unwrap();
        lp.add_constraint(&[1.0], ConstraintOp::Eq, 1.0).unwrap();
        lp.add_constraint(&[1.0], ConstraintOp::Ge, 1.0).unwrap();
        let sol = lp.solve().unwrap();
        assert!(approx(sol.objective, 1.0));
    }

    #[test]
    fn lp_duality_on_small_cover_matching() {
        // Primal: min fractional edge cover of a 4-cycle (edges {0,1},{1,2},{2,3},{3,0}) = 2.
        let mut primal = LinearProgram::new(4, Direction::Minimize);
        primal.set_objective(&[1.0; 4]);
        let incident = [
            [1.0, 0.0, 0.0, 1.0],
            [1.0, 1.0, 0.0, 0.0],
            [0.0, 1.0, 1.0, 0.0],
            [0.0, 0.0, 1.0, 1.0],
        ];
        for row in &incident {
            primal.add_constraint(row, ConstraintOp::Ge, 1.0).unwrap();
        }
        // Dual: max fractional matching (independent set in the hypergraph sense).
        let mut dual = LinearProgram::new(4, Direction::Maximize);
        dual.set_objective(&[1.0; 4]);
        // each edge: sum of its two endpoints ≤ 1
        let edges = [(0, 1), (1, 2), (2, 3), (3, 0)];
        for (u, v) in edges {
            let mut row = [0.0; 4];
            row[u] = 1.0;
            row[v] = 1.0;
            dual.add_constraint(&row, ConstraintOp::Le, 1.0).unwrap();
        }
        let p = primal.solve().unwrap();
        let d = dual.solve().unwrap();
        assert!(approx(p.objective, 2.0));
        assert!(approx(d.objective, 2.0));
        assert!(approx(p.objective, d.objective));
    }
}
