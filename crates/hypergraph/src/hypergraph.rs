//! Finite hypergraphs.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A finite hypergraph `H = (V(H), E(H))` with `V(H) = {0, .., n-1}` and
/// `E(H)` a set of non-empty hyperedges (paper, Section 1.2).
///
/// The *arity* of a hypergraph is the maximum size of its hyperedges.
/// Duplicate hyperedges are collapsed; empty hyperedges are rejected.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hypergraph {
    num_vertices: usize,
    edges: Vec<BTreeSet<usize>>,
}

impl Hypergraph {
    /// Create a hypergraph with `num_vertices` vertices and no edges.
    pub fn new(num_vertices: usize) -> Self {
        Hypergraph {
            num_vertices,
            edges: Vec::new(),
        }
    }

    /// Create a hypergraph from explicit edges.
    ///
    /// # Panics
    /// Panics if an edge is empty or references a vertex out of range.
    pub fn from_edges(num_vertices: usize, edges: &[&[usize]]) -> Self {
        let mut h = Hypergraph::new(num_vertices);
        for e in edges {
            h.add_edge(e);
        }
        h
    }

    /// Number of vertices `|V(H)|`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of (distinct) hyperedges `|E(H)|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Iterate over the vertices.
    pub fn vertices(&self) -> impl Iterator<Item = usize> {
        0..self.num_vertices
    }

    /// The hyperedges.
    #[inline]
    pub fn edges(&self) -> &[BTreeSet<usize>] {
        &self.edges
    }

    /// Add a hyperedge; duplicate edges are ignored. Returns `true` if the
    /// edge was new.
    ///
    /// # Panics
    /// Panics if the edge is empty or out of range.
    pub fn add_edge(&mut self, vertices: &[usize]) -> bool {
        assert!(!vertices.is_empty(), "hyperedges must be non-empty");
        let e: BTreeSet<usize> = vertices.iter().copied().collect();
        for &v in &e {
            assert!(
                v < self.num_vertices,
                "vertex {v} out of range (|V| = {})",
                self.num_vertices
            );
        }
        if self.edges.contains(&e) {
            false
        } else {
            self.edges.push(e);
            true
        }
    }

    /// The arity of `H`: the maximum hyperedge cardinality (0 if no edges).
    pub fn arity(&self) -> usize {
        self.edges.iter().map(BTreeSet::len).max().unwrap_or(0)
    }

    /// The hyperedges containing vertex `v`.
    pub fn edges_containing(&self, v: usize) -> Vec<&BTreeSet<usize>> {
        self.edges.iter().filter(|e| e.contains(&v)).collect()
    }

    /// The (primal-graph) neighbours of `v`: vertices sharing a hyperedge
    /// with `v`, excluding `v` itself.
    pub fn neighbours(&self, v: usize) -> BTreeSet<usize> {
        let mut out = BTreeSet::new();
        for e in &self.edges {
            if e.contains(&v) {
                out.extend(e.iter().copied());
            }
        }
        out.remove(&v);
        out
    }

    /// The primal graph (Gaifman graph) as an adjacency list: two vertices
    /// are adjacent iff some hyperedge contains both.
    pub fn primal_graph(&self) -> Vec<BTreeSet<usize>> {
        let mut adj = vec![BTreeSet::new(); self.num_vertices];
        for e in &self.edges {
            let vs: Vec<usize> = e.iter().copied().collect();
            for i in 0..vs.len() {
                for j in (i + 1)..vs.len() {
                    adj[vs[i]].insert(vs[j]);
                    adj[vs[j]].insert(vs[i]);
                }
            }
        }
        adj
    }

    /// The induced hypergraph `H[X]` (Definition 39): vertex set `X`,
    /// hyperedges `{ e ∩ X | e ∈ E(H), e ∩ X ≠ ∅ }`.
    ///
    /// Vertices of the induced hypergraph are *renumbered* `0..|X|` following
    /// the sorted order of `X`; the second return value maps new indices back
    /// to original vertices.
    pub fn induced(&self, x: &BTreeSet<usize>) -> (Hypergraph, Vec<usize>) {
        let back: Vec<usize> = x.iter().copied().collect();
        let fwd: std::collections::HashMap<usize, usize> =
            back.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        let mut h = Hypergraph::new(back.len());
        for e in &self.edges {
            let inter: Vec<usize> = e.iter().filter_map(|v| fwd.get(v).copied()).collect();
            if !inter.is_empty() {
                h.add_edge(&inter);
            }
        }
        (h, back)
    }

    /// Whether the hypergraph is connected (ignoring isolated vertices is
    /// *not* done: an isolated vertex makes the hypergraph disconnected
    /// unless it is the only vertex).
    pub fn is_connected(&self) -> bool {
        if self.num_vertices <= 1 {
            return true;
        }
        let adj = self.primal_graph();
        let mut seen = vec![false; self.num_vertices];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for &w in &adj[v] {
                if !seen[w] {
                    seen[w] = true;
                    count += 1;
                    stack.push(w);
                }
            }
        }
        count == self.num_vertices
    }

    /// Whether vertex `v` is isolated (appears in no hyperedge).
    pub fn is_isolated(&self, v: usize) -> bool {
        self.edges.iter().all(|e| !e.contains(&v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> Hypergraph {
        Hypergraph::from_edges(3, &[&[0, 1], &[1, 2]])
    }

    #[test]
    fn basic_accessors() {
        let h = path3();
        assert_eq!(h.num_vertices(), 3);
        assert_eq!(h.num_edges(), 2);
        assert_eq!(h.arity(), 2);
        assert_eq!(h.vertices().count(), 3);
    }

    #[test]
    fn duplicate_edges_collapse() {
        let mut h = path3();
        assert!(!h.add_edge(&[1, 0]));
        assert_eq!(h.num_edges(), 2);
        assert!(h.add_edge(&[0, 2]));
        assert_eq!(h.num_edges(), 3);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_edge_rejected() {
        let mut h = Hypergraph::new(2);
        h.add_edge(&[]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_vertex_rejected() {
        let mut h = Hypergraph::new(2);
        h.add_edge(&[0, 5]);
    }

    #[test]
    fn neighbours_and_primal_graph() {
        let h = Hypergraph::from_edges(4, &[&[0, 1, 2], &[2, 3]]);
        assert_eq!(h.neighbours(2), [0, 1, 3].into_iter().collect());
        assert_eq!(h.neighbours(0), [1, 2].into_iter().collect());
        let adj = h.primal_graph();
        assert!(adj[3].contains(&2));
        assert!(!adj[3].contains(&0));
    }

    #[test]
    fn edges_containing_vertex() {
        let h = path3();
        assert_eq!(h.edges_containing(1).len(), 2);
        assert_eq!(h.edges_containing(0).len(), 1);
    }

    #[test]
    fn induced_subhypergraph() {
        let h = Hypergraph::from_edges(4, &[&[0, 1, 2], &[2, 3]]);
        let x: BTreeSet<usize> = [1, 2, 3].into_iter().collect();
        let (hi, back) = h.induced(&x);
        assert_eq!(back, vec![1, 2, 3]);
        assert_eq!(hi.num_vertices(), 3);
        // edges: {1,2} ∩ X (from {0,1,2}) and {2,3} ∩ X
        assert_eq!(hi.num_edges(), 2);
        assert_eq!(hi.arity(), 2);
    }

    #[test]
    fn induced_empty_intersection_dropped() {
        let h = Hypergraph::from_edges(4, &[&[0, 1], &[2, 3]]);
        let x: BTreeSet<usize> = [0, 1].into_iter().collect();
        let (hi, _) = h.induced(&x);
        assert_eq!(hi.num_edges(), 1);
    }

    #[test]
    fn connectivity() {
        assert!(path3().is_connected());
        let h = Hypergraph::from_edges(4, &[&[0, 1], &[2, 3]]);
        assert!(!h.is_connected());
        let single = Hypergraph::new(1);
        assert!(single.is_connected());
        let mut iso = Hypergraph::new(3);
        iso.add_edge(&[0, 1]);
        assert!(!iso.is_connected());
        assert!(iso.is_isolated(2));
        assert!(!iso.is_isolated(0));
    }

    #[test]
    fn arity_of_edgeless_hypergraph_is_zero() {
        let h = Hypergraph::new(5);
        assert_eq!(h.arity(), 0);
        assert_eq!(h.num_edges(), 0);
    }
}
