//! Fractional edge covers and fractional independent sets (Definitions 33
//! and 39).

use crate::hypergraph::Hypergraph;
use crate::lp::{ConstraintOp, Direction, LinearProgram};
use std::collections::BTreeSet;

/// A fractional edge cover of a hypergraph: a weight `γ(e) ∈ [0, 1]` per
/// hyperedge such that every vertex is covered with total weight ≥ 1
/// (Definition 39).
#[derive(Debug, Clone, PartialEq)]
pub struct FractionalCover {
    /// One weight per hyperedge of the hypergraph, in edge order.
    pub weights: Vec<f64>,
    /// The total weight `Σ_e γ(e)`.
    pub value: f64,
}

/// Compute an optimal fractional edge cover of `H[X]`, i.e. a witness for
/// `fcn(H[X])` (Definition 39). The weights returned are indexed by the
/// hyperedges of the *original* hypergraph `h`; edges disjoint from `X`
/// receive weight 0.
///
/// If `X` is empty, the cover is trivially empty with value 0. If some vertex
/// of `X` lies in no hyperedge, the LP is infeasible and the cover number is
/// `+∞`; this function then returns `None`.
pub fn fractional_edge_cover(h: &Hypergraph, x: &BTreeSet<usize>) -> Option<FractionalCover> {
    if x.is_empty() {
        return Some(FractionalCover {
            weights: vec![0.0; h.num_edges()],
            value: 0.0,
        });
    }
    // Edges relevant to X.
    let relevant: Vec<usize> = (0..h.num_edges())
        .filter(|&i| h.edges()[i].intersection(x).next().is_some())
        .collect();
    // Feasibility: every vertex of X must appear in some edge.
    for &v in x {
        if !relevant.iter().any(|&i| h.edges()[i].contains(&v)) {
            return None;
        }
    }
    let m = relevant.len();
    let mut lp = LinearProgram::new(m, Direction::Minimize);
    lp.set_objective(&vec![1.0; m]);
    for &v in x {
        let row: Vec<f64> = relevant
            .iter()
            .map(|&i| if h.edges()[i].contains(&v) { 1.0 } else { 0.0 })
            .collect();
        lp.add_constraint(&row, ConstraintOp::Ge, 1.0)
            .expect("dimensions match");
    }
    let sol = lp.solve().ok()?;
    let mut weights = vec![0.0; h.num_edges()];
    for (j, &i) in relevant.iter().enumerate() {
        // Cap at 1.0: the optimum never needs weights above 1, but numerical
        // noise may exceed it marginally.
        weights[i] = sol.values[j].clamp(0.0, 1.0);
    }
    Some(FractionalCover {
        weights,
        value: sol.objective,
    })
}

/// The fractional edge cover number `fcn(H[X])` (Definition 39), or `None`
/// if some vertex of `X` is isolated in `H` (cover number `+∞`).
pub fn fractional_cover_number(h: &Hypergraph, x: &BTreeSet<usize>) -> Option<f64> {
    fractional_edge_cover(h, x).map(|c| c.value)
}

/// The fractional edge cover number of the entire hypergraph, `fcn(H)`
/// (also written `ρ*(H)`, the exponent in the AGM bound).
pub fn rho_star(h: &Hypergraph) -> Option<f64> {
    let all: BTreeSet<usize> = h.vertices().collect();
    fractional_cover_number(h, &all)
}

/// A fractional independent set of `H`: weights `μ(v) ∈ [0, 1]` such that
/// `Σ_{v ∈ e} μ(v) ≤ 1` for every hyperedge (Definition 33), together with
/// its total value `μ(V(H))`.
#[derive(Debug, Clone, PartialEq)]
pub struct FractionalIndependentSet {
    /// One weight per vertex.
    pub weights: Vec<f64>,
    /// The total weight `Σ_v μ(v)`.
    pub value: f64,
}

impl FractionalIndependentSet {
    /// `μ(X) = Σ_{v ∈ X} μ(v)` for a vertex subset `X`.
    pub fn weight_of(&self, x: &BTreeSet<usize>) -> f64 {
        x.iter().map(|&v| self.weights[v]).sum()
    }
}

/// Compute a maximum fractional independent set of `H` (LP dual of the
/// fractional edge cover restricted to covered vertices; isolated vertices
/// are additionally capped at weight 1).
pub fn maximum_fractional_independent_set(h: &Hypergraph) -> FractionalIndependentSet {
    let n = h.num_vertices();
    if n == 0 {
        return FractionalIndependentSet {
            weights: vec![],
            value: 0.0,
        };
    }
    let mut lp = LinearProgram::new(n, Direction::Maximize);
    lp.set_objective(&vec![1.0; n]);
    for e in h.edges() {
        let mut row = vec![0.0; n];
        for &v in e {
            row[v] = 1.0;
        }
        lp.add_constraint(&row, ConstraintOp::Le, 1.0)
            .expect("dimensions match");
    }
    // μ(v) ≤ 1 for every vertex (matters for isolated vertices).
    for v in 0..n {
        let mut row = vec![0.0; n];
        row[v] = 1.0;
        lp.add_constraint(&row, ConstraintOp::Le, 1.0)
            .expect("dimensions match");
    }
    let sol = lp
        .solve()
        .expect("fractional independent set LP is feasible and bounded");
    FractionalIndependentSet {
        weights: sol.values,
        value: sol.objective,
    }
}

/// The uniform fractional independent set `μ ≡ 1/a` used in Observation 34,
/// where `a` is the arity of `H` (for an edgeless hypergraph, `μ ≡ 1`).
pub fn uniform_fractional_independent_set(h: &Hypergraph) -> FractionalIndependentSet {
    let a = h.arity();
    let w = if a == 0 { 1.0 } else { 1.0 / a as f64 };
    let weights = vec![w; h.num_vertices()];
    let value = w * h.num_vertices() as f64;
    FractionalIndependentSet { weights, value }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6
    }

    fn triangle() -> Hypergraph {
        Hypergraph::from_edges(3, &[&[0, 1], &[1, 2], &[0, 2]])
    }

    #[test]
    fn triangle_cover_number_is_three_halves() {
        let h = triangle();
        let all: BTreeSet<usize> = h.vertices().collect();
        let c = fractional_edge_cover(&h, &all).unwrap();
        assert!(approx(c.value, 1.5), "got {}", c.value);
        // every vertex covered
        for v in 0..3 {
            let cov: f64 = h
                .edges()
                .iter()
                .zip(&c.weights)
                .filter(|(e, _)| e.contains(&v))
                .map(|(_, w)| *w)
                .sum();
            assert!(cov >= 1.0 - 1e-6);
        }
        assert!(approx(rho_star(&h).unwrap(), 1.5));
    }

    #[test]
    fn single_hyperedge_cover_number_is_one() {
        let h = Hypergraph::from_edges(4, &[&[0, 1, 2, 3]]);
        assert!(approx(rho_star(&h).unwrap(), 1.0));
    }

    #[test]
    fn path_cover_number() {
        // path 0-1-2-3: minimum fractional (= integral) cover uses both end edges: 2
        let h = Hypergraph::from_edges(4, &[&[0, 1], &[1, 2], &[2, 3]]);
        assert!(approx(rho_star(&h).unwrap(), 2.0));
    }

    #[test]
    fn induced_cover_number_is_monotone() {
        // Observation 40: B ⊆ B' implies fcn(H[B]) ≤ fcn(H[B']).
        let h = Hypergraph::from_edges(5, &[&[0, 1], &[1, 2], &[2, 3], &[3, 4], &[0, 4]]);
        let all: BTreeSet<usize> = h.vertices().collect();
        let big = fractional_cover_number(&h, &all).unwrap();
        for v in 0..5 {
            let mut smaller = all.clone();
            smaller.remove(&v);
            let small = fractional_cover_number(&h, &smaller).unwrap();
            assert!(small <= big + 1e-6);
        }
    }

    #[test]
    fn empty_set_has_cover_zero() {
        let h = triangle();
        assert!(approx(
            fractional_cover_number(&h, &BTreeSet::new()).unwrap(),
            0.0
        ));
    }

    #[test]
    fn isolated_vertex_has_infinite_cover() {
        let mut h = Hypergraph::new(3);
        h.add_edge(&[0, 1]);
        let x: BTreeSet<usize> = [0, 2].into_iter().collect();
        assert!(fractional_cover_number(&h, &x).is_none());
    }

    #[test]
    fn lp_duality_cover_equals_independent_set() {
        // For a hypergraph without isolated vertices, max fractional independent
        // set value = min fractional edge cover value (LP duality).
        for h in [
            triangle(),
            Hypergraph::from_edges(4, &[&[0, 1], &[1, 2], &[2, 3]]),
            Hypergraph::from_edges(4, &[&[0, 1, 2], &[1, 2, 3], &[0, 3]]),
            Hypergraph::from_edges(5, &[&[0, 1, 2], &[2, 3, 4], &[0, 4]]),
        ] {
            let mis = maximum_fractional_independent_set(&h);
            let cover = rho_star(&h).unwrap();
            assert!(
                approx(mis.value, cover),
                "duality gap: mis {} cover {}",
                mis.value,
                cover
            );
        }
    }

    #[test]
    fn independent_set_respects_edge_constraints() {
        let h = triangle();
        let mis = maximum_fractional_independent_set(&h);
        for e in h.edges() {
            let s: f64 = e.iter().map(|&v| mis.weights[v]).sum();
            assert!(s <= 1.0 + 1e-6);
        }
        let x: BTreeSet<usize> = [0, 1].into_iter().collect();
        assert!(mis.weight_of(&x) <= 1.0 + 1e-6);
    }

    #[test]
    fn isolated_vertices_capped_at_one() {
        let mut h = Hypergraph::new(3);
        h.add_edge(&[0, 1]);
        let mis = maximum_fractional_independent_set(&h);
        assert!(mis.weights[2] <= 1.0 + 1e-6);
        // vertex 2 contributes fully, edge {0,1} contributes 1 → total 2
        assert!(approx(mis.value, 2.0));
    }

    #[test]
    fn uniform_independent_set() {
        let h = Hypergraph::from_edges(4, &[&[0, 1, 2], &[2, 3]]);
        let mu = uniform_fractional_independent_set(&h);
        assert!(approx(mu.weights[0], 1.0 / 3.0));
        assert!(approx(mu.value, 4.0 / 3.0));
        // it must be a feasible fractional independent set
        for e in h.edges() {
            let s: f64 = e.iter().map(|&v| mu.weights[v]).sum();
            assert!(s <= 1.0 + 1e-6);
        }
    }
}
