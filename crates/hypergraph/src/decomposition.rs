//! Tree decompositions (Definition 4) and nice tree decompositions
//! (Definition 42).

use crate::hypergraph::Hypergraph;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A (rooted) tree decomposition `(T, B)` of a hypergraph (Definition 4).
///
/// Nodes are indexed `0..num_nodes`; each node has a *bag* `B_t ⊆ V(H)`.
/// The two defining conditions are checked by [`TreeDecomposition::validate`]:
///
/// 1. for each hyperedge `e ∈ E(H)` there is a node `t` with `e ⊆ B_t`, and
/// 2. for each vertex `v ∈ V(H)` the set `{t | v ∈ B_t}` induces a non-empty
///    connected subtree of `T`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TreeDecomposition {
    bags: Vec<BTreeSet<usize>>,
    parent: Vec<Option<usize>>,
    children: Vec<Vec<usize>>,
    root: usize,
}

impl TreeDecomposition {
    /// A decomposition with a single bag (usually the trivial decomposition
    /// containing all vertices).
    pub fn single_bag(bag: BTreeSet<usize>) -> Self {
        TreeDecomposition {
            bags: vec![bag],
            parent: vec![None],
            children: vec![vec![]],
            root: 0,
        }
    }

    /// Create an empty decomposition consisting only of a root with the given
    /// bag; further nodes are attached with [`TreeDecomposition::add_child`].
    pub fn with_root(bag: BTreeSet<usize>) -> Self {
        Self::single_bag(bag)
    }

    /// Add a node with the given bag as a child of `parent`, returning the
    /// new node's id.
    pub fn add_child(&mut self, parent: usize, bag: BTreeSet<usize>) -> usize {
        assert!(parent < self.bags.len());
        let id = self.bags.len();
        self.bags.push(bag);
        self.parent.push(Some(parent));
        self.children.push(vec![]);
        self.children[parent].push(id);
        id
    }

    /// Number of nodes `|V(T)|`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.bags.len()
    }

    /// The root node.
    #[inline]
    pub fn root(&self) -> usize {
        self.root
    }

    /// The bag `B_t`.
    #[inline]
    pub fn bag(&self, t: usize) -> &BTreeSet<usize> {
        &self.bags[t]
    }

    /// All bags, indexed by node.
    #[inline]
    pub fn bags(&self) -> &[BTreeSet<usize>] {
        &self.bags
    }

    /// Children of a node.
    #[inline]
    pub fn children(&self, t: usize) -> &[usize] {
        &self.children[t]
    }

    /// Parent of a node (`None` for the root).
    #[inline]
    pub fn parent(&self, t: usize) -> Option<usize> {
        self.parent[t]
    }

    /// The treewidth of this decomposition: `max_t |B_t| − 1` (Definition 4).
    pub fn width(&self) -> isize {
        self.bags
            .iter()
            .map(|b| b.len() as isize - 1)
            .max()
            .unwrap_or(-1)
    }

    /// Nodes in post-order (children before parents), useful for bottom-up
    /// dynamic programming.
    pub fn postorder(&self) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.num_nodes());
        let mut stack = vec![(self.root, false)];
        while let Some((t, expanded)) = stack.pop() {
            if expanded {
                order.push(t);
            } else {
                stack.push((t, true));
                for &c in &self.children[t] {
                    stack.push((c, false));
                }
            }
        }
        order
    }

    /// Validate this decomposition against a hypergraph (Definition 4), also
    /// requiring every vertex of `h` to appear in at least one bag.
    pub fn validate(&self, h: &Hypergraph) -> Result<(), String> {
        // Tree structure sanity.
        if self.parent[self.root].is_some() {
            return Err("root has a parent".into());
        }
        let mut reached = vec![false; self.num_nodes()];
        for t in self.postorder() {
            reached[t] = true;
        }
        if reached.iter().any(|r| !r) {
            return Err("tree is not connected from the root".into());
        }
        // Condition (i): every hyperedge inside some bag.
        for (i, e) in h.edges().iter().enumerate() {
            if !self.bags.iter().any(|b| e.is_subset(b)) {
                return Err(format!("hyperedge #{i} {:?} is in no bag", e));
            }
        }
        // Every vertex appears somewhere.
        for v in h.vertices() {
            if !self.bags.iter().any(|b| b.contains(&v)) {
                return Err(format!("vertex {v} is in no bag"));
            }
        }
        // Condition (ii): connectivity of each vertex's occurrence set.
        for v in h.vertices() {
            let nodes: Vec<usize> = (0..self.num_nodes())
                .filter(|&t| self.bags[t].contains(&v))
                .collect();
            if nodes.is_empty() {
                continue;
            }
            // BFS within the occurrence-induced subtree.
            let occurrence: BTreeSet<usize> = nodes.iter().copied().collect();
            let mut seen = BTreeSet::new();
            let mut stack = vec![nodes[0]];
            seen.insert(nodes[0]);
            while let Some(t) = stack.pop() {
                let mut adjacent: Vec<usize> = self.children[t].clone();
                if let Some(p) = self.parent[t] {
                    adjacent.push(p);
                }
                for a in adjacent {
                    if occurrence.contains(&a) && seen.insert(a) {
                        stack.push(a);
                    }
                }
            }
            if seen.len() != nodes.len() {
                return Err(format!("occurrences of vertex {v} are not connected"));
            }
        }
        Ok(())
    }

    /// Ensure that every vertex of `h` appears in some bag by attaching, for
    /// each missing vertex `v`, a new leaf with bag `{v}` to the root.
    ///
    /// This is exactly the construction used in the proofs of Theorem 5 and
    /// Lemma 35: adding size-1 bags never increases the treewidth (beyond 0)
    /// nor any monotone `f`-width beyond `max(f({v}), old width)`.
    pub fn ensure_all_vertices(&mut self, h: &Hypergraph) {
        for v in h.vertices() {
            if !self.bags.iter().any(|b| b.contains(&v)) {
                let mut bag = BTreeSet::new();
                bag.insert(v);
                self.add_child(self.root, bag);
            }
        }
    }

    /// Contract edges of the tree whose endpoints carry identical bags
    /// (removing redundant nodes). Returns a new decomposition.
    pub fn contract_equal_bags(&self) -> TreeDecomposition {
        // Union-find style: map each node to a representative whose bag differs
        // from its parent's representative.
        let order = self.postorder();
        let mut repr: Vec<usize> = (0..self.num_nodes()).collect();
        // process top-down so parents are resolved first
        let mut topdown = order.clone();
        topdown.reverse();
        for &t in &topdown {
            if let Some(p) = self.parent[t] {
                if self.bags[t] == self.bags[repr[p]] {
                    repr[t] = repr[p];
                }
            }
        }
        // Build new tree over representatives.
        let reps: Vec<usize> = {
            let mut r: Vec<usize> = repr.clone();
            r.sort_unstable();
            r.dedup();
            r
        };
        // Sorted map: node renumbering must stay independent of hash
        // order (cqc-audit `hash-iter` — decomposition shape reaches
        // every oracle call and therefore every estimate).
        let new_id: std::collections::BTreeMap<usize, usize> =
            reps.iter().enumerate().map(|(i, &r)| (r, i)).collect();
        let mut out = TreeDecomposition {
            bags: reps.iter().map(|&r| self.bags[r].clone()).collect(),
            parent: vec![None; reps.len()],
            children: vec![vec![]; reps.len()],
            root: new_id[&repr[self.root]],
        };
        for &t in &topdown {
            if let Some(p) = self.parent[t] {
                let rt = new_id[&repr[t]];
                let rp = new_id[&repr[p]];
                if rt != rp && out.parent[rt].is_none() && rt != out.root {
                    out.parent[rt] = Some(rp);
                    out.children[rp].push(rt);
                }
            }
        }
        out
    }

    /// Convert into a *nice* tree decomposition (Definition 42):
    /// empty root and leaf bags, at most two children per node, join nodes
    /// with equal bags and chain nodes differing in exactly one element.
    pub fn into_nice(&self) -> NiceTreeDecomposition {
        let contracted = self.contract_equal_bags();
        let mut builder = NiceBuilder::new();
        let root_bag = contracted.bag(contracted.root()).clone();
        // New root with an empty bag, then a chain introducing the root bag.
        let new_root = builder.push(BTreeSet::new(), None);
        let attach = builder.chain(new_root, &BTreeSet::new(), &root_bag);
        builder.process(&contracted, contracted.root(), attach);
        builder.finish(new_root)
    }
}

/// The role of a node in a nice tree decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NiceNodeKind {
    /// A leaf with an empty bag.
    Leaf,
    /// A node whose bag adds exactly one vertex relative to its unique child.
    Introduce(usize),
    /// A node whose bag removes exactly one vertex relative to its unique child.
    Forget(usize),
    /// A node with two children; all three bags are equal.
    Join,
}

/// A nice tree decomposition (Definition 42) together with the role of each
/// node. The root always has an empty bag.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NiceTreeDecomposition {
    /// The underlying decomposition.
    pub td: TreeDecomposition,
    kinds: Vec<NiceNodeKind>,
}

impl NiceTreeDecomposition {
    /// The role of node `t`.
    pub fn kind(&self, t: usize) -> NiceNodeKind {
        self.kinds[t]
    }

    /// Validate the niceness conditions of Definition 42.
    pub fn validate_nice(&self) -> Result<(), String> {
        let td = &self.td;
        if !td.bag(td.root()).is_empty() {
            return Err("root bag is not empty".into());
        }
        for t in 0..td.num_nodes() {
            let ch = td.children(t);
            match ch.len() {
                0 => {
                    if !td.bag(t).is_empty() {
                        return Err(format!("leaf {t} has a non-empty bag"));
                    }
                }
                1 => {
                    let c = ch[0];
                    let diff: BTreeSet<usize> =
                        td.bag(t).symmetric_difference(td.bag(c)).copied().collect();
                    if diff.len() != 1 {
                        return Err(format!(
                            "node {t} and its child differ in {} elements",
                            diff.len()
                        ));
                    }
                }
                2 => {
                    if td.bag(ch[0]) != td.bag(t) || td.bag(ch[1]) != td.bag(t) {
                        return Err(format!("join node {t} has unequal child bags"));
                    }
                }
                k => return Err(format!("node {t} has {k} > 2 children")),
            }
        }
        Ok(())
    }
}

struct NiceBuilder {
    bags: Vec<BTreeSet<usize>>,
    parent: Vec<Option<usize>>,
    children: Vec<Vec<usize>>,
}

impl NiceBuilder {
    fn new() -> Self {
        NiceBuilder {
            bags: Vec::new(),
            parent: Vec::new(),
            children: Vec::new(),
        }
    }

    fn push(&mut self, bag: BTreeSet<usize>, parent: Option<usize>) -> usize {
        let id = self.bags.len();
        self.bags.push(bag);
        self.parent.push(parent);
        self.children.push(vec![]);
        if let Some(p) = parent {
            self.children[p].push(id);
        }
        id
    }

    /// Create a chain of nodes from bag `from` (already existing at
    /// `attach`) towards bag `to`, removing `from ∖ to` one vertex at a time
    /// and then adding `to ∖ from` one at a time. Returns the id of the final
    /// node (which has bag `to`). If `from == to`, `attach` itself is
    /// returned.
    fn chain(&mut self, attach: usize, from: &BTreeSet<usize>, to: &BTreeSet<usize>) -> usize {
        let mut current = from.clone();
        let mut at = attach;
        for v in from.difference(to) {
            current.remove(v);
            at = self.push(current.clone(), Some(at));
        }
        for v in to.difference(from) {
            current.insert(*v);
            at = self.push(current.clone(), Some(at));
        }
        at
    }

    /// Recursively translate the subtree of `old` rooted at `t`; `attach` is a
    /// node of the new tree whose bag equals `old.bag(t)`.
    fn process(&mut self, old: &TreeDecomposition, t: usize, attach: usize) {
        let children = old.children(t);
        let bag_t = old.bag(t).clone();
        match children.len() {
            0 => {
                // chain down to an empty leaf
                self.chain(attach, &bag_t, &BTreeSet::new());
            }
            1 => {
                let c = children[0];
                let target = old.bag(c).clone();
                let at = self.chain(attach, &bag_t, &target);
                self.process(old, c, at);
            }
            _ => {
                // Binary join tree over copies of bag_t with one leaf per child.
                let leaves = self.join_tree(attach, &bag_t, children.len());
                for (leaf, &c) in leaves.iter().zip(children.iter()) {
                    let target = old.bag(c).clone();
                    let at = self.chain(*leaf, &bag_t, &target);
                    self.process(old, c, at);
                }
            }
        }
    }

    /// Build a (nearly complete) binary tree of `k` leaves below `attach`,
    /// all nodes carrying `bag`. Returns the leaf ids.
    fn join_tree(&mut self, attach: usize, bag: &BTreeSet<usize>, k: usize) -> Vec<usize> {
        assert!(k >= 2);
        let mut frontier = vec![attach];
        // repeatedly split until we have k leaves
        while frontier.len() < k {
            // take the first frontier node, give it two children
            let node = frontier.remove(0);
            let l = self.push(bag.clone(), Some(node));
            let r = self.push(bag.clone(), Some(node));
            frontier.push(l);
            frontier.push(r);
        }
        frontier
    }

    fn finish(self, root: usize) -> NiceTreeDecomposition {
        let td = TreeDecomposition {
            bags: self.bags,
            parent: self.parent,
            children: self.children,
            root,
        };
        let mut kinds = Vec::with_capacity(td.num_nodes());
        for t in 0..td.num_nodes() {
            let ch = td.children(t);
            let kind = match ch.len() {
                0 => NiceNodeKind::Leaf,
                1 => {
                    let c = ch[0];
                    let added: Vec<usize> = td.bag(t).difference(td.bag(c)).copied().collect();
                    let removed: Vec<usize> = td.bag(c).difference(td.bag(t)).copied().collect();
                    if added.len() == 1 && removed.is_empty() {
                        NiceNodeKind::Introduce(added[0])
                    } else if removed.len() == 1 && added.is_empty() {
                        NiceNodeKind::Forget(removed[0])
                    } else {
                        // This should not happen for trees produced by the
                        // builder; classify conservatively as Join which will
                        // fail validation.
                        NiceNodeKind::Join
                    }
                }
                _ => NiceNodeKind::Join,
            };
            kinds.push(kind);
        }
        NiceTreeDecomposition { td, kinds }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(v: &[usize]) -> BTreeSet<usize> {
        v.iter().copied().collect()
    }

    fn path_decomposition() -> (Hypergraph, TreeDecomposition) {
        // path 0-1-2-3, decomposition bags {0,1},{1,2},{2,3} as a path
        let h = Hypergraph::from_edges(4, &[&[0, 1], &[1, 2], &[2, 3]]);
        let mut td = TreeDecomposition::with_root(set(&[0, 1]));
        let a = td.add_child(0, set(&[1, 2]));
        td.add_child(a, set(&[2, 3]));
        (h, td)
    }

    #[test]
    fn valid_path_decomposition() {
        let (h, td) = path_decomposition();
        assert!(td.validate(&h).is_ok());
        assert_eq!(td.width(), 1);
        assert_eq!(td.num_nodes(), 3);
        assert_eq!(td.postorder().len(), 3);
        assert_eq!(td.parent(0), None);
        assert_eq!(td.children(0).len(), 1);
    }

    #[test]
    fn missing_edge_detected() {
        let h = Hypergraph::from_edges(3, &[&[0, 1], &[0, 2]]);
        let td = TreeDecomposition::single_bag(set(&[0, 1]));
        let err = td.validate(&h).unwrap_err();
        assert!(err.contains("in no bag"));
    }

    #[test]
    fn missing_vertex_detected() {
        let h = Hypergraph::from_edges(3, &[&[0, 1]]);
        let td = TreeDecomposition::single_bag(set(&[0, 1]));
        // vertex 2 is isolated and in no bag
        assert!(td.validate(&h).is_err());
        let mut td2 = td.clone();
        td2.ensure_all_vertices(&h);
        assert!(td2.validate(&h).is_ok());
    }

    #[test]
    fn disconnected_occurrence_detected() {
        let h = Hypergraph::from_edges(3, &[&[0, 1], &[1, 2]]);
        // bags {0,1}, {1,2} and a bag {0} hanging off the {1,2} node: vertex 0
        // occurs in nodes 0 and 2 which are not adjacent — invalid.
        let mut td = TreeDecomposition::with_root(set(&[0, 1]));
        let a = td.add_child(0, set(&[1, 2]));
        td.add_child(a, set(&[0]));
        // connectivity of vertex 0 fails: nodes {0, 2} with path through node 1 missing 0
        assert!(td.validate(&h).is_err());
    }

    #[test]
    fn trivial_single_bag_is_valid() {
        let h = Hypergraph::from_edges(3, &[&[0, 1, 2]]);
        let td = TreeDecomposition::single_bag(set(&[0, 1, 2]));
        assert!(td.validate(&h).is_ok());
        assert_eq!(td.width(), 2);
    }

    #[test]
    fn contract_equal_bags_removes_duplicates() {
        let mut td = TreeDecomposition::with_root(set(&[0, 1]));
        let a = td.add_child(0, set(&[0, 1]));
        let b = td.add_child(a, set(&[1, 2]));
        td.add_child(b, set(&[1, 2]));
        let c = td.contract_equal_bags();
        assert_eq!(c.num_nodes(), 2);
        assert_eq!(c.width(), 1);
    }

    #[test]
    fn contraction_renumbering_is_deterministic() {
        // Regression for the cqc-audit `hash-iter` conversion: node
        // renumbering walks a sorted map, so repeated contractions of one
        // tree are structurally identical (node ids included) — whatever
        // the process hash state.
        let mut td = TreeDecomposition::with_root(set(&[0, 1]));
        let mut prev = 0;
        for i in 0..12usize {
            let lo = i / 2;
            prev = td.add_child(prev, set(&[lo, lo + 1]));
        }
        let c1 = td.contract_equal_bags();
        let c2 = td.contract_equal_bags();
        assert_eq!(c1, c2);
        assert_eq!(c1.num_nodes(), 6);
        // ids follow first-occurrence order of the representatives
        for t in 1..c1.num_nodes() {
            assert!(c1.parent(t).unwrap() < t);
        }
    }

    #[test]
    fn nice_decomposition_of_path() {
        let (h, td) = path_decomposition();
        let nice = td.into_nice();
        assert!(nice.validate_nice().is_ok(), "{:?}", nice.validate_nice());
        assert!(nice.td.validate(&h).is_ok());
        // width must not increase
        assert_eq!(nice.td.width(), 1);
        // root bag empty
        assert!(nice.td.bag(nice.td.root()).is_empty());
        // kinds are consistent
        for t in 0..nice.td.num_nodes() {
            match nice.kind(t) {
                NiceNodeKind::Leaf => assert!(nice.td.children(t).is_empty()),
                NiceNodeKind::Join => assert_eq!(nice.td.children(t).len(), 2),
                _ => assert_eq!(nice.td.children(t).len(), 1),
            }
        }
    }

    #[test]
    fn nice_decomposition_with_branching() {
        // star: edges {0,1},{0,2},{0,3} with a star-shaped decomposition
        let h = Hypergraph::from_edges(4, &[&[0, 1], &[0, 2], &[0, 3]]);
        let mut td = TreeDecomposition::with_root(set(&[0, 1]));
        td.add_child(0, set(&[0, 2]));
        td.add_child(0, set(&[0, 3]));
        let nice = td.into_nice();
        assert!(nice.validate_nice().is_ok(), "{:?}", nice.validate_nice());
        assert!(nice.td.validate(&h).is_ok());
        assert_eq!(nice.td.width(), 1);
        // there must be at least one join node
        assert!((0..nice.td.num_nodes()).any(|t| nice.kind(t) == NiceNodeKind::Join));
    }

    #[test]
    fn nice_decomposition_high_branching() {
        // 5 children under one root bag
        let h = Hypergraph::from_edges(6, &[&[0, 1], &[0, 2], &[0, 3], &[0, 4], &[0, 5]]);
        let mut td = TreeDecomposition::with_root(set(&[0]));
        for v in 1..6 {
            td.add_child(0, set(&[0, v]));
        }
        let nice = td.into_nice();
        assert!(nice.validate_nice().is_ok(), "{:?}", nice.validate_nice());
        assert!(nice.td.validate(&h).is_ok());
        assert_eq!(nice.td.width(), 1);
    }

    #[test]
    fn nice_preserves_validity_on_larger_example() {
        // grid-ish hypergraph with a handmade decomposition
        let h = Hypergraph::from_edges(
            6,
            &[
                &[0, 1],
                &[1, 2],
                &[3, 4],
                &[4, 5],
                &[0, 3],
                &[1, 4],
                &[2, 5],
            ],
        );
        let mut td = TreeDecomposition::with_root(set(&[0, 1, 3, 4]));
        let a = td.add_child(0, set(&[1, 2, 4, 5]));
        let _ = a;
        assert!(td.validate(&h).is_ok());
        let nice = td.into_nice();
        assert!(nice.validate_nice().is_ok());
        assert!(nice.td.validate(&h).is_ok());
        assert_eq!(nice.td.width(), 3);
    }

    #[test]
    fn postorder_children_before_parents() {
        let (_, td) = path_decomposition();
        let order = td.postorder();
        let pos = |t: usize| order.iter().position(|&x| x == t).unwrap();
        for t in 0..td.num_nodes() {
            for &c in td.children(t) {
                assert!(pos(c) < pos(t));
            }
        }
    }
}
