//! Property-based tests for the hypergraph width machinery: validity of tree
//! decompositions, consistency between the exact and heuristic treewidth
//! computations, monotonicity of fractional edge covers (Observation 40), the
//! width-measure hierarchy of Lemma 12 and the bounded-arity collapse of
//! Observation 34.

use cqc_hypergraph::adaptive::adaptive_width_bounds;
use cqc_hypergraph::fractional::{
    fractional_cover_number, fractional_edge_cover, maximum_fractional_independent_set,
};
use cqc_hypergraph::fwidth::{minimise_width, WidthMeasure};
use cqc_hypergraph::hypergraph::Hypergraph;
use cqc_hypergraph::treewidth::{treewidth_exact, treewidth_upper_bound};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// A random small hypergraph: up to 7 vertices, hyperedges of size 1–3.
fn small_hypergraph() -> impl Strategy<Value = Hypergraph> {
    (2usize..=7).prop_flat_map(|n| {
        let edge = proptest::collection::btree_set(0..n, 1..=3usize.min(n));
        proptest::collection::vec(edge, 1..8).prop_map(move |edges| {
            let mut h = Hypergraph::new(n);
            for e in edges {
                let e: Vec<usize> = e.into_iter().collect();
                h.add_edge(&e);
            }
            h
        })
    })
}

/// A random small *graph* (arity ≤ 2), where exact treewidth is cheap.
fn small_graph() -> impl Strategy<Value = Hypergraph> {
    (2usize..=7).prop_flat_map(|n| {
        proptest::collection::btree_set((0..n, 0..n), 0..12).prop_map(move |pairs| {
            let mut h = Hypergraph::new(n);
            for (u, v) in pairs {
                if u != v {
                    h.add_edge(&[u, v]);
                }
            }
            h
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Both the exact and the heuristic treewidth computations return valid
    /// tree decompositions whose width matches the reported number, and the
    /// heuristic never undercuts the exact optimum.
    #[test]
    fn treewidth_decompositions_are_valid(h in small_hypergraph()) {
        let (tw, td_exact) = treewidth_exact(&h);
        let (ub, td_heur) = treewidth_upper_bound(&h);
        prop_assert!(td_exact.validate(&h).is_ok(), "{:?}", td_exact.validate(&h));
        prop_assert!(td_heur.validate(&h).is_ok(), "{:?}", td_heur.validate(&h));
        prop_assert_eq!(td_exact.width(), tw as isize);
        prop_assert!(td_heur.width() <= ub as isize);
        prop_assert!(tw <= ub, "exact {tw} > heuristic {ub}");
        // Width is at least (largest hyperedge) − 1: every hyperedge must fit
        // into a single bag.
        let max_edge = h.edges().iter().map(|e| e.len()).max().unwrap_or(0);
        prop_assert!(tw + 1 >= max_edge);
    }

    /// Converting to a *nice* tree decomposition (Definition 42) preserves
    /// validity, does not increase the width, and satisfies the niceness
    /// conditions.
    #[test]
    fn nice_decomposition_preserves_width(h in small_hypergraph()) {
        let (tw, td) = treewidth_exact(&h);
        let mut td = td;
        td.ensure_all_vertices(&h);
        let nice = td.into_nice();
        prop_assert!(nice.validate_nice().is_ok(), "{:?}", nice.validate_nice());
        prop_assert!(nice.td.validate(&h).is_ok(), "{:?}", nice.td.validate(&h));
        prop_assert!(nice.td.width() <= tw as isize);
    }

    /// Observation 40: `fcn(H[B]) ≤ fcn(H[B'])` whenever `B ⊆ B'`.
    #[test]
    fn fractional_cover_monotone(h in small_hypergraph(), mask in proptest::collection::vec(any::<bool>(), 7)) {
        let covered: BTreeSet<usize> = h
            .edges()
            .iter()
            .flat_map(|e| e.iter().copied())
            .collect();
        let b_prime: BTreeSet<usize> = covered.clone();
        let b: BTreeSet<usize> = covered
            .iter()
            .copied()
            .filter(|&v| mask.get(v).copied().unwrap_or(false))
            .collect();
        let fb = fractional_cover_number(&h, &b);
        let fbp = fractional_cover_number(&h, &b_prime);
        // Both sets consist of covered vertices, so the LPs are feasible.
        prop_assert!(fb.is_some() && fbp.is_some());
        prop_assert!(fb.unwrap() <= fbp.unwrap() + 1e-6);
    }

    /// A fractional edge cover really covers: every vertex of X has total
    /// incident weight ≥ 1, and the reported value is the sum of the weights.
    #[test]
    fn fractional_cover_is_feasible(h in small_hypergraph()) {
        let x: BTreeSet<usize> = h
            .edges()
            .iter()
            .flat_map(|e| e.iter().copied())
            .collect();
        let cover = fractional_edge_cover(&h, &x).unwrap();
        let total: f64 = cover.weights.iter().sum();
        prop_assert!((total - cover.value).abs() < 1e-6);
        for &v in &x {
            let mut incident = 0.0;
            for (i, e) in h.edges().iter().enumerate() {
                if e.contains(&v) {
                    incident += cover.weights[i];
                }
            }
            prop_assert!(incident >= 1.0 - 1e-6, "vertex {v} covered only {incident}");
        }
    }

    /// LP duality (weak): any fractional independent set has total weight at
    /// most the fractional edge cover number over the covered vertices.
    #[test]
    fn weak_lp_duality(h in small_hypergraph()) {
        let covered: BTreeSet<usize> = h
            .edges()
            .iter()
            .flat_map(|e| e.iter().copied())
            .collect();
        prop_assume!(!covered.is_empty());
        let mu = maximum_fractional_independent_set(&h);
        let mu_total: f64 = covered.iter().map(|&v| mu.weights[v]).sum();
        let fcn = fractional_cover_number(&h, &covered).unwrap();
        prop_assert!(mu_total <= fcn + 1e-5, "μ(V) = {mu_total} > fcn = {fcn}");
    }

    /// The width-measure hierarchy on any one decomposition-producing search:
    /// fhw(H) ≤ hw(H) ≤ tw(H) + 1 (Lemma 12 restricted to the directions that
    /// hold pointwise per bag).
    #[test]
    fn width_hierarchy(h in small_hypergraph()) {
        prop_assume!(h.num_edges() > 0);
        // Isolated vertices make every (fractional) cover infeasible, so
        // hypertreewidth and fhw are +∞ for them; the hierarchy statement is
        // about hypergraphs without isolated vertices.
        let covered: BTreeSet<usize> = h.edges().iter().flat_map(|e| e.iter().copied()).collect();
        prop_assume!(covered.len() == h.num_vertices());
        let (tw, _) = treewidth_exact(&h);
        let (hw, td_hw) = minimise_width(&h, WidthMeasure::Hypertreewidth);
        let (fhw, td_fhw) = minimise_width(&h, WidthMeasure::FractionalHypertreewidth);
        prop_assert!(td_hw.validate(&h).is_ok());
        prop_assert!(td_fhw.validate(&h).is_ok());
        prop_assert!(fhw <= hw + 1e-6, "fhw {fhw} > hw {hw}");
        prop_assert!(hw <= (tw + 1) as f64 + 1e-6, "hw {hw} > tw+1 {}", tw + 1);
        prop_assert!(fhw >= 1.0 - 1e-6);
    }

    /// Adaptive-width bounds bracket correctly (lower ≤ upper), the lower
    /// bound is witnessed by a genuine fractional independent set, and
    /// Observation 34 holds with the upper bound: tw ≤ a·aw − 1 ≤ a·upper − 1.
    #[test]
    fn adaptive_width_bounds_and_observation_34(h in small_hypergraph()) {
        prop_assume!(h.num_edges() > 0);
        // Only consider hypergraphs without isolated vertices so that every
        // width measure is finite.
        let covered: BTreeSet<usize> = h.edges().iter().flat_map(|e| e.iter().copied()).collect();
        prop_assume!(covered.len() == h.num_vertices());
        let bounds = adaptive_width_bounds(&h, 3);
        prop_assert!(bounds.lower <= bounds.upper + 1e-6,
            "lower {} > upper {}", bounds.lower, bounds.upper);
        // witness feasibility: Σ_{v ∈ e} μ(v) ≤ 1 for every hyperedge
        for e in h.edges() {
            let s: f64 = e.iter().map(|&v| bounds.witness.weights[v]).sum();
            prop_assert!(s <= 1.0 + 1e-6);
        }
        let (tw, _) = treewidth_exact(&h);
        let a = h.arity() as f64;
        prop_assert!(
            (tw as f64) <= a * bounds.upper - 1.0 + 1e-6,
            "Observation 34 violated: tw {} > a·aw_upper − 1 = {}",
            tw,
            a * bounds.upper - 1.0
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// On ordinary graphs, treewidth 0 ⇔ no edges, and treewidth 1 ⇔ a forest
    /// with at least one edge.
    #[test]
    fn graph_treewidth_characterisations(h in small_graph()) {
        let (tw, td) = treewidth_exact(&h);
        prop_assert!(td.validate(&h).is_ok());
        let m = h.num_edges();
        if m == 0 {
            prop_assert_eq!(tw, 0);
        } else {
            prop_assert!(tw >= 1);
            // A graph is a forest iff every connected component has
            // |edges| = |vertices| − 1; equivalently no cycle. Check against
            // treewidth ≤ 1.
            let forest = is_forest(&h);
            prop_assert_eq!(tw == 1, forest, "tw = {}, forest = {}", tw, forest);
        }
    }

    /// `induced` keeps exactly the non-empty intersections of hyperedges
    /// with X (Definition 39) — no edge of the induced hypergraph is empty
    /// and every one comes from an original edge.
    #[test]
    fn induced_subhypergraph_edges(h in small_hypergraph(), mask in proptest::collection::vec(any::<bool>(), 7)) {
        let x: BTreeSet<usize> = (0..h.num_vertices())
            .filter(|&v| mask.get(v).copied().unwrap_or(false))
            .collect();
        let (hx, vertex_map) = h.induced(&x);
        prop_assert_eq!(hx.num_vertices(), x.len());
        for e in hx.edges() {
            prop_assert!(!e.is_empty());
            // Map back to original vertex ids and check containment in some
            // original hyperedge intersected with X.
            let orig: BTreeSet<usize> = e.iter().map(|&i| vertex_map[i]).collect();
            prop_assert!(orig.iter().all(|v| x.contains(v)));
            prop_assert!(
                h.edges().iter().any(|oe| {
                    let inter: BTreeSet<usize> = oe.intersection(&x).copied().collect();
                    inter == orig
                }),
                "induced edge {:?} does not arise from any original edge",
                orig
            );
        }
    }
}

/// Cycle detection on the primal graph (union-find would be overkill here).
fn is_forest(h: &Hypergraph) -> bool {
    let n = h.num_vertices();
    let adj = h.primal_graph();
    let mut seen = vec![false; n];
    for start in 0..n {
        if seen[start] {
            continue;
        }
        // BFS counting vertices and edges of the component.
        let mut stack = vec![start];
        seen[start] = true;
        let mut vertices = 0usize;
        let mut degree_sum = 0usize;
        while let Some(v) = stack.pop() {
            vertices += 1;
            degree_sum += adj[v].len();
            for &w in &adj[v] {
                if !seen[w] {
                    seen[w] = true;
                    stack.push(w);
                }
            }
        }
        let edges = degree_sum / 2;
        if edges >= vertices {
            return false;
        }
    }
    true
}
