//! End-to-end tests for the command-line tool: generate a workload, write it
//! to disk, then count, sample and classify against it — the full pipeline a
//! downstream user would run.

use cqc_cli::{run, CliError};
use cqc_core::{exact_count_answers, ApproxConfig};
use cqc_data::parse_facts;
use cqc_query::parse_query;
use std::path::PathBuf;

fn temp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("cqc-cli-e2e-{}-{name}", std::process::id()));
    p
}

fn run_cli(parts: &[&str]) -> Result<String, CliError> {
    let argv: Vec<String> = parts.iter().map(|s| s.to_string()).collect();
    run(&argv)
}

#[test]
fn generate_count_sample_classify_pipeline() {
    let db_path = temp_path("pipeline.facts");
    let db_str = db_path.to_str().unwrap();

    // 1. generate a small Erdős–Rényi digraph
    let out = run_cli(&[
        "generate",
        "--family",
        "erdos-renyi",
        "--n",
        "30",
        "--avg-degree",
        "3",
        "--seed",
        "42",
        "--out",
        db_str,
    ])
    .unwrap();
    assert!(out.contains("wrote"));

    // 2. approximate count of the paper's query (1), checked against the
    //    library's exact baseline on the very same file
    let query_text = "ans(x) :- E(x, y), E(x, z), y != z";
    let out = run_cli(&[
        "count",
        "--db",
        db_str,
        "--query",
        query_text,
        "--epsilon",
        "0.2",
        "--seed",
        "7",
    ])
    .unwrap();
    assert!(out.contains("FPTRAS"), "{out}");
    let estimate: f64 = out
        .lines()
        .find(|l| l.starts_with("estimate"))
        .and_then(|l| l.split(':').nth(1))
        .unwrap()
        .trim()
        .parse()
        .unwrap();
    let db = parse_facts(&std::fs::read_to_string(&db_path).unwrap()).unwrap();
    let q = parse_query(query_text).unwrap();
    let truth = exact_count_answers(&q, &db) as f64;
    assert!(
        (estimate - truth).abs() <= 0.4 * truth.max(1.0),
        "cli estimate {estimate} vs exact {truth}"
    );

    // 3. `exact` agrees with the library baseline exactly
    let out = run_cli(&["exact", "--db", db_str, "--query", query_text]).unwrap();
    assert_eq!(out.trim().parse::<f64>().unwrap(), truth);

    // 4. samples are genuine answers
    let out = run_cli(&[
        "sample", "--db", db_str, "--query", query_text, "--count", "5", "--seed", "3",
    ])
    .unwrap();
    let cfg = ApproxConfig::new(0.3, 0.1);
    let _ = cfg; // silence unused in case sampling below changes
    let answers = cqc_query::enumerate_answers(&q, &db);
    for line in out.lines().skip(1) {
        let v: u32 = line.trim().parse().unwrap();
        assert!(
            answers.contains(&vec![cqc_data::Val(v)]),
            "sample {v} is not an answer"
        );
    }

    // 5. classify reports the DCQ / treewidth-1 cell of Figure 1
    let out = run_cli(&["classify", "--query", query_text]).unwrap();
    assert!(out.contains("DCQ"), "{out}");
    assert!(out.contains("treewidth             : 1"), "{out}");

    std::fs::remove_file(&db_path).ok();
}

#[test]
fn forced_fpras_on_a_plain_cq_tracks_exact() {
    let db_path = temp_path("fpras.facts");
    let db_str = db_path.to_str().unwrap();
    run_cli(&[
        "generate", "--family", "grid", "--rows", "5", "--cols", "5", "--out", db_str,
    ])
    .unwrap();

    let query_text = "ans(x, y) :- E(x, z), E(z, y)";
    let out = run_cli(&[
        "count",
        "--db",
        db_str,
        "--query",
        query_text,
        "--method",
        "fpras",
        "--epsilon",
        "0.2",
    ])
    .unwrap();
    assert!(out.contains("FPRAS"), "{out}");
    let estimate: f64 = out
        .lines()
        .find(|l| l.starts_with("estimate"))
        .and_then(|l| l.split(':').nth(1))
        .unwrap()
        .trim()
        .parse()
        .unwrap();
    let db = parse_facts(&std::fs::read_to_string(&db_path).unwrap()).unwrap();
    let q = parse_query(query_text).unwrap();
    let truth = exact_count_answers(&q, &db) as f64;
    assert!(
        (estimate - truth).abs() <= 0.4 * truth.max(1.0),
        "cli estimate {estimate} vs exact {truth}"
    );
    std::fs::remove_file(&db_path).ok();
}

#[test]
fn query_file_option_is_supported() {
    let db_path = temp_path("qfile.facts");
    let q_path = temp_path("query.txt");
    run_cli(&[
        "generate",
        "--family",
        "grid",
        "--rows",
        "3",
        "--cols",
        "3",
        "--out",
        db_path.to_str().unwrap(),
    ])
    .unwrap();
    std::fs::write(&q_path, "ans(x, y) :- E(x, y)\n").unwrap();
    let out = run_cli(&[
        "exact",
        "--db",
        db_path.to_str().unwrap(),
        "--query-file",
        q_path.to_str().unwrap(),
    ])
    .unwrap();
    // 3x3 grid: 12 undirected edges, stored in both directions
    assert_eq!(out.trim(), "24");
    std::fs::remove_file(&db_path).ok();
    std::fs::remove_file(&q_path).ok();
}

#[test]
fn malformed_inputs_produce_helpful_errors() {
    // missing database file
    let err = run_cli(&[
        "count",
        "--db",
        "/nonexistent/x.facts",
        "--query",
        "ans(x) :- E(x, y)",
    ])
    .unwrap_err();
    assert!(matches!(err, CliError::Io(_)));

    // malformed facts file
    let bad = temp_path("bad.facts");
    std::fs::write(&bad, "relation E 2\nE 0 1\n").unwrap(); // missing universe
    let err = run_cli(&[
        "count",
        "--db",
        bad.to_str().unwrap(),
        "--query",
        "ans(x) :- E(x, y)",
    ])
    .unwrap_err();
    assert!(matches!(err, CliError::Facts(_)));
    std::fs::remove_file(&bad).ok();

    // malformed query
    let db_path = temp_path("ok.facts");
    std::fs::write(&db_path, "universe 3\nrelation E 2\nE 0 1\n").unwrap();
    let err = run_cli(&[
        "count",
        "--db",
        db_path.to_str().unwrap(),
        "--query",
        "this is not a query",
    ])
    .unwrap_err();
    assert!(matches!(err, CliError::Query(_)));

    // unknown option
    let err = run_cli(&[
        "exact",
        "--db",
        db_path.to_str().unwrap(),
        "--query",
        "ans(x, y) :- E(x, y)",
        "--epsilo",
        "0.1",
    ])
    .unwrap_err();
    assert!(matches!(err, CliError::Usage(_)));
    std::fs::remove_file(&db_path).ok();
}
