//! The `classify` command: report the query class, its width measures and
//! the scheme Figure 1 of the paper assigns to it.

use crate::common::load_query;
use crate::{Args, CliError};
use cqc_hypergraph::adaptive::adaptive_width_bounds;
use cqc_hypergraph::fwidth::{minimise_width, WidthMeasure};
use cqc_hypergraph::treewidth::{treewidth_exact, treewidth_upper_bound};
use cqc_query::{query_hypergraph, Query, QueryClass};
use std::fmt::Write as _;

/// Everything `classify` computes, exposed for tests and for embedding.
#[derive(Debug, Clone)]
pub struct Classification {
    /// CQ / DCQ / ECQ.
    pub class: QueryClass,
    /// ‖ϕ‖ as defined in Section 1.1.
    pub size: usize,
    /// Number of variables / free variables.
    pub vars: (usize, usize),
    /// Maximum atom arity.
    pub arity: usize,
    /// Treewidth of H(ϕ) and whether it is exact.
    pub treewidth: (usize, bool),
    /// Hypertreewidth upper bound of H(ϕ).
    pub hypertreewidth: f64,
    /// Fractional hypertreewidth upper bound of H(ϕ).
    pub fractional_hypertreewidth: f64,
    /// Adaptive-width lower and upper bounds.
    pub adaptive_width: (f64, f64),
    /// The scheme Figure 1 assigns (given the width information above).
    pub scheme: &'static str,
}

/// Classify a query (the computational part of `cqc classify`).
pub fn classify_query(query: &Query) -> Classification {
    let h = query_hypergraph(query);
    let (tw, exact_tw) = if query.num_vars() <= 13 {
        (treewidth_exact(&h).0, true)
    } else {
        (treewidth_upper_bound(&h).0, false)
    };
    let (hw, _) = minimise_width(&h, WidthMeasure::Hypertreewidth);
    let (fhw, _) = minimise_width(&h, WidthMeasure::FractionalHypertreewidth);
    let aw = adaptive_width_bounds(&h, 3);
    let class = query.class();
    let scheme = match class {
        QueryClass::CQ => "FPRAS (Theorem 16; bounded fhw) — and FPTRAS a fortiori",
        QueryClass::DCQ => "FPTRAS (Theorem 13; bounded adaptive width) — no FPRAS unless NP = RP",
        QueryClass::ECQ => {
            "FPTRAS (Theorem 5; bounded treewidth & arity) — no FPRAS unless NP = RP"
        }
    };
    Classification {
        class,
        size: query.size(),
        vars: (query.num_vars(), query.num_free_vars()),
        arity: query.max_arity(),
        treewidth: (tw, exact_tw),
        hypertreewidth: hw,
        fractional_hypertreewidth: fhw,
        adaptive_width: (aw.lower, aw.upper),
        scheme,
    }
}

/// Run `cqc classify`.
pub fn run_classify(args: &Args) -> Result<String, CliError> {
    let query = load_query(args)?;
    let c = classify_query(&query);
    let mut out = String::new();
    writeln!(out, "class                 : {:?}", c.class).unwrap();
    writeln!(out, "‖ϕ‖                   : {}", c.size).unwrap();
    writeln!(out, "variables (free)      : {} ({})", c.vars.0, c.vars.1).unwrap();
    writeln!(out, "max arity             : {}", c.arity).unwrap();
    writeln!(
        out,
        "treewidth             : {}{}",
        c.treewidth.0,
        if c.treewidth.1 { "" } else { " (upper bound)" }
    )
    .unwrap();
    writeln!(out, "hypertreewidth ≤      : {:.3}", c.hypertreewidth).unwrap();
    writeln!(
        out,
        "fractional htw ≤      : {:.3}",
        c.fractional_hypertreewidth
    )
    .unwrap();
    writeln!(
        out,
        "adaptive width        : [{:.3}, {:.3}]",
        c.adaptive_width.0, c.adaptive_width.1
    )
    .unwrap();
    writeln!(out, "scheme (Figure 1)     : {}", c.scheme).unwrap();
    // What `Engine::prepare` would select under `Backend::Auto` — fully
    // determined by the class, so no need to actually run the planner here.
    writeln!(
        out,
        "engine plan           : {}",
        cqc_core::auto_method(c.class)
    )
    .unwrap();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args_from;
    use cqc_query::parse_query;

    #[test]
    fn friends_query_is_a_treewidth_one_dcq() {
        let q = parse_query("ans(x) :- E(x, y), E(x, z), y != z").unwrap();
        let c = classify_query(&q);
        assert_eq!(c.class, QueryClass::DCQ);
        assert_eq!(c.treewidth, (1, true));
        assert!(c.fractional_hypertreewidth <= c.hypertreewidth + 1e-9);
        assert!(c.adaptive_width.0 <= c.adaptive_width.1 + 1e-9);
        assert!(c.scheme.contains("Theorem 13"));
    }

    #[test]
    fn plain_path_cq_gets_the_fpras() {
        let q = parse_query("ans(x, y) :- E(x, z), E(z, y)").unwrap();
        let c = classify_query(&q);
        assert_eq!(c.class, QueryClass::CQ);
        assert!(c.scheme.contains("Theorem 16"));
    }

    #[test]
    fn negation_makes_an_ecq() {
        let q = parse_query("ans(x, y) :- E(x, y), !E(y, x)").unwrap();
        let c = classify_query(&q);
        assert_eq!(c.class, QueryClass::ECQ);
        assert!(c.scheme.contains("Theorem 5"));
    }

    #[test]
    fn hamiltonian_style_query_keeps_treewidth_one() {
        // Observation 10: the disequalities do not enter H(ϕ).
        let q = parse_query(
            "ans(x1, x2, x3, x4) :- E(x1, x2), E(x2, x3), E(x3, x4), \
             x1 != x2, x1 != x3, x1 != x4, x2 != x3, x2 != x4, x3 != x4",
        )
        .unwrap();
        let c = classify_query(&q);
        assert_eq!(c.treewidth, (1, true));
        assert_eq!(c.class, QueryClass::DCQ);
    }

    #[test]
    fn classify_command_renders_a_report() {
        let out = run_classify(
            &args_from(["classify", "--query", "ans(x) :- E(x, y), E(x, z), y != z"]).unwrap(),
        )
        .unwrap();
        assert!(out.contains("class"));
        assert!(out.contains("treewidth"));
        assert!(out.contains("Figure 1"));
    }
}
