//! The `sample` command: draw approximately uniform answers (Section 6).

use crate::common::{approx_config, load_database, load_query};
use crate::{Args, CliError};
use cqc_core::{Backend, EngineBuilder};
use std::fmt::Write as _;

/// Run `cqc sample`.
pub fn run_sample(args: &Args) -> Result<String, CliError> {
    let query = load_query(args)?;
    let db = load_database(args)?;
    let cfg = approx_config(args)?;
    let count: usize = args.get_or("count", 10)?;
    let use_names = args.switch("names");

    // Sampling always runs on the colour-coding oracle, so prepare with
    // the FPTRAS backend and skip the CQ decomposition search entirely.
    let prepared = EngineBuilder::from_config(cfg)
        .backend(Backend::Fptras)
        .build()
        .map_err(|e| CliError::Usage(e.to_string()))?
        .prepare(&query)
        .map_err(|e| CliError::Count(e.to_string()))?;
    let samples = prepared
        .sample(&db, count)
        .map_err(|e| CliError::Count(e.to_string()))?;

    let mut out = String::new();
    if samples.is_empty() {
        writeln!(out, "no answers").unwrap();
        return Ok(out);
    }
    let free: Vec<&str> = query
        .free_vars()
        .iter()
        .map(|&v| query.variable_name(v))
        .collect();
    writeln!(out, "# {}", free.join(", ")).unwrap();
    for s in &samples {
        let rendered: Vec<String> = s
            .iter()
            .map(|&v| {
                if use_names {
                    db.element_name(v)
                } else {
                    v.0.to_string()
                }
            })
            .collect();
        writeln!(out, "{}", rendered.join(", ")).unwrap();
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args_from;
    use std::path::PathBuf;

    fn write_temp(name: &str, contents: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("cqc-cli-sample-{}-{name}", std::process::id()));
        std::fs::write(&path, contents).unwrap();
        path
    }

    const DB: &str = "\
universe 6
relation E 2
E 0 1
E 0 2
E 3 4
E 3 5
element 0 alice
element 3 dana
";

    #[test]
    fn samples_are_answers_of_the_friends_query() {
        let db = write_temp("ok.facts", DB);
        let out = run_sample(
            &args_from([
                "sample",
                "--db",
                db.to_str().unwrap(),
                "--query",
                "ans(x) :- E(x, y), E(x, z), y != z",
                "--count",
                "6",
                "--seed",
                "3",
            ])
            .unwrap(),
        )
        .unwrap();
        // only persons 0 and 3 have two distinct friends
        for line in out.lines().skip(1) {
            assert!(line == "0" || line == "3", "unexpected sample line {line}");
        }
        std::fs::remove_file(db).ok();
    }

    #[test]
    fn names_switch_prints_element_names() {
        let db = write_temp("names.facts", DB);
        let out = run_sample(
            &args_from([
                "sample",
                "--db",
                db.to_str().unwrap(),
                "--query",
                "ans(x) :- E(x, y), E(x, z), y != z",
                "--count",
                "4",
                "--names",
            ])
            .unwrap(),
        )
        .unwrap();
        for line in out.lines().skip(1) {
            assert!(
                line == "alice" || line == "dana",
                "unexpected sample line {line}"
            );
        }
        std::fs::remove_file(db).ok();
    }

    #[test]
    fn empty_answer_set_reports_no_answers() {
        let db = write_temp("empty.facts", "universe 3\nrelation E 2\n");
        let out = run_sample(
            &args_from([
                "sample",
                "--db",
                db.to_str().unwrap(),
                "--query",
                "ans(x, y) :- E(x, y)",
            ])
            .unwrap(),
        )
        .unwrap();
        assert!(out.contains("no answers"));
        std::fs::remove_file(db).ok();
    }
}
