//! The `count` and `exact` commands: estimate or exactly compute
//! `|Ans(ϕ, D)|`, reporting which scheme of Figure 1 was used.
//!
//! `count` is built on the prepared-query engine: the query is planned
//! *once* (`Engine::prepare`), then evaluated against every given database
//! — the first `--db` plus any extra facts files passed as positional
//! arguments — `--repeat` times each, so the planning cost amortises across
//! the whole run exactly as in the library API.

use crate::common::{approx_config, load_database, load_facts_file, load_query};
use crate::{Args, CliError};
use cqc_core::{exact_count_answers, Backend, EngineBuilder, PreparedQuery};
use cqc_data::Structure;
use cqc_runtime::resolve_threads;
use std::fmt::Write as _;

fn parse_backend(raw: &str) -> Result<Backend, CliError> {
    match raw {
        "auto" => Ok(Backend::Auto),
        "fpras" => Ok(Backend::Fpras),
        "fptras" => Ok(Backend::Fptras),
        "exact" | "brute" | "bruteforce" => Ok(Backend::Exact),
        other => Err(CliError::Usage(format!(
            "unknown method `{other}` (expected auto | fpras | fptras | exact)"
        ))),
    }
}

/// Load the extra databases passed as positional facts files.
fn load_extra_databases(args: &Args) -> Result<Vec<(String, Structure)>, CliError> {
    args.positional()
        .iter()
        .map(|path| Ok((path.clone(), load_facts_file(path)?)))
        .collect()
}

fn write_plan_header(out: &mut String, prepared: &PreparedQuery) {
    let summary = prepared.plan_summary();
    writeln!(out, "scheme      : {}", summary.method).unwrap();
    if let Some(fhw) = summary.fhw {
        writeln!(out, "fhw used    : {fhw:.3}").unwrap();
    }
    if let Some(tw) = summary.query_treewidth {
        writeln!(out, "treewidth   : {tw}").unwrap();
    }
    if let Some(reps) = summary.colour_repetitions {
        writeln!(out, "repetitions : {reps}").unwrap();
    }
    writeln!(
        out,
        "planned in  : {:.3} ms",
        summary.planning_time.as_secs_f64() * 1e3
    )
    .unwrap();
}

/// Run `cqc count`.
pub fn run_count(args: &Args) -> Result<String, CliError> {
    let query = load_query(args)?;
    let first_db = load_database(args)?;
    let cfg = approx_config(args)?;
    let backend = parse_backend(args.value_of("method").unwrap_or("auto"))?;
    let repeat: usize = args.get_or("repeat", 1)?;
    if repeat == 0 {
        return Err(CliError::Usage("`--repeat` must be at least 1".into()));
    }
    let quiet = args.switch("quiet");
    let extra = load_extra_databases(args)?;

    let engine = EngineBuilder::from_config(cfg.clone())
        .backend(backend)
        .build()
        .map_err(|e| CliError::Usage(e.to_string()))?;

    // Plan once; every evaluation below reuses the prepared query.
    let prepared = engine
        .prepare(&query)
        .map_err(|e| CliError::Count(e.to_string()))?;

    let mut dbs: Vec<(String, Structure)> = Vec::with_capacity(1 + extra.len());
    dbs.push((args.value_of("db").unwrap_or("db").to_string(), first_db));
    dbs.extend(extra);

    let mut out = String::new();
    if !quiet {
        writeln!(out, "query class : {:?}", query.class()).unwrap();
        writeln!(out, "‖ϕ‖         : {}", query.size()).unwrap();
        writeln!(out, "free vars   : {}", query.num_free_vars()).unwrap();
        for (name, db) in &dbs {
            writeln!(
                out,
                "database    : {name} — {} elements, {} facts",
                db.universe_size(),
                db.fact_count()
            )
            .unwrap();
        }
        writeln!(out, "ε, δ        : {}, {}", cfg.epsilon, cfg.delta).unwrap();
        writeln!(out, "threads     : {}", resolve_threads(cfg.threads)).unwrap();
        write_plan_header(&mut out, &prepared);
    }

    let mut total_eval = std::time::Duration::ZERO;
    let mut evaluations = 0usize;
    for (name, db) in &dbs {
        let mut last_report = None;
        for _ in 0..repeat {
            let report = prepared
                .count(db)
                .map_err(|e| CliError::Count(e.to_string()))?;
            total_eval += report.telemetry.wall;
            evaluations += 1;
            last_report = Some(report);
        }
        // Report once per database (repeats are deterministic duplicates,
        // run purely to demonstrate/measure plan amortisation).
        let report = last_report.as_ref().unwrap();
        if dbs.len() > 1 {
            writeln!(out, "[{name}]").unwrap();
        }
        writeln!(out, "exact?      : {}", report.exact).unwrap();
        writeln!(out, "estimate    : {}", report.estimate).unwrap();
    }

    if !quiet && (repeat > 1 || dbs.len() > 1) {
        // `threads=` is part of the scrapeable summary: bench scripts parse
        // it out of the amortised timing line.
        writeln!(
            out,
            "evaluated   : {} run(s) in {:.3} ms total ({:.3} ms/run, plan reused, threads={})",
            evaluations,
            total_eval.as_secs_f64() * 1e3,
            total_eval.as_secs_f64() * 1e3 / evaluations as f64,
            resolve_threads(cfg.threads)
        )
        .unwrap();
    }
    Ok(out)
}

/// Run `cqc exact`.
pub fn run_exact(args: &Args) -> Result<String, CliError> {
    let query = load_query(args)?;
    let db = load_database(args)?;
    let v = exact_count_answers(&query, &db);
    Ok(format!("{v}\n"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args_from;
    use std::path::PathBuf;

    fn write_temp(name: &str, contents: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("cqc-cli-test-{}-{name}", std::process::id()));
        std::fs::write(&path, contents).unwrap();
        path
    }

    const DB: &str = "\
universe 6
relation E 2
E 0 1
E 0 2
E 1 2
E 2 3
E 3 4
E 3 5
E 5 0
";

    const DB2: &str = "\
universe 4
relation E 2
E 0 1
E 0 2
E 3 1
E 3 2
";

    #[test]
    fn method_parsing() {
        assert_eq!(parse_backend("auto").unwrap(), Backend::Auto);
        assert_eq!(parse_backend("fpras").unwrap(), Backend::Fpras);
        assert_eq!(parse_backend("fptras").unwrap(), Backend::Fptras);
        assert_eq!(parse_backend("brute").unwrap(), Backend::Exact);
        assert!(parse_backend("magic").is_err());
    }

    #[test]
    fn exact_command_counts_the_friends_query() {
        let db = write_temp("exact.facts", DB);
        let out = run_exact(
            &args_from([
                "exact",
                "--db",
                db.to_str().unwrap(),
                "--query",
                "ans(x) :- E(x, y), E(x, z), y != z",
            ])
            .unwrap(),
        )
        .unwrap();
        assert_eq!(out.trim(), "2");
        std::fs::remove_file(db).ok();
    }

    #[test]
    fn count_auto_dispatches_and_reports() {
        let db = write_temp("auto.facts", DB);
        let out = run_count(
            &args_from([
                "count",
                "--db",
                db.to_str().unwrap(),
                "--query",
                "ans(x) :- E(x, y), E(x, z), y != z",
                "--epsilon",
                "0.2",
                "--seed",
                "7",
            ])
            .unwrap(),
        )
        .unwrap();
        assert!(out.contains("FPTRAS"), "{out}");
        assert!(out.contains("estimate"), "{out}");
        assert!(out.contains("planned in"), "{out}");
        std::fs::remove_file(db).ok();
    }

    #[test]
    fn repeat_reuses_the_plan_and_reports_totals() {
        let db = write_temp("repeat.facts", DB);
        let out = run_count(
            &args_from([
                "count",
                "--db",
                db.to_str().unwrap(),
                "--query",
                "ans(x) :- E(x, y), E(x, z), y != z",
                "--repeat",
                "3",
                "--seed",
                "5",
            ])
            .unwrap(),
        )
        .unwrap();
        assert!(out.contains("3 run(s)"), "{out}");
        assert!(out.contains("plan reused"), "{out}");
        std::fs::remove_file(db).ok();
    }

    #[test]
    fn multiple_databases_share_one_plan() {
        let db1 = write_temp("multi1.facts", DB);
        let db2 = write_temp("multi2.facts", DB2);
        let out = run_count(
            &args_from([
                "count",
                "--db",
                db1.to_str().unwrap(),
                db2.to_str().unwrap(),
                "--query",
                "ans(x) :- E(x, y), E(x, z), y != z",
                "--seed",
                "9",
            ])
            .unwrap(),
        )
        .unwrap();
        // one estimate line per database, plus the amortisation summary
        assert_eq!(out.matches("estimate    :").count(), 2, "{out}");
        assert!(out.contains("2 run(s)"), "{out}");
        // DB2: elements 0 and 3 each have two distinct out-neighbours
        let last_estimate: f64 = out
            .lines()
            .rev()
            .find(|l| l.starts_with("estimate"))
            .and_then(|l| l.split(':').nth(1))
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        assert!((last_estimate - 2.0).abs() <= 1.0, "{out}");
        std::fs::remove_file(db1).ok();
        std::fs::remove_file(db2).ok();
    }

    #[test]
    fn zero_repeat_is_rejected() {
        let db = write_temp("zero.facts", DB);
        let err = run_count(
            &args_from([
                "count",
                "--db",
                db.to_str().unwrap(),
                "--query",
                "ans(x, y) :- E(x, y)",
                "--repeat",
                "0",
            ])
            .unwrap(),
        )
        .unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
        std::fs::remove_file(db).ok();
    }

    #[test]
    fn fpras_is_refused_for_dcqs() {
        let db = write_temp("refuse.facts", DB);
        let err = run_count(
            &args_from([
                "count",
                "--db",
                db.to_str().unwrap(),
                "--query",
                "ans(x) :- E(x, y), E(x, z), y != z",
                "--method",
                "fpras",
            ])
            .unwrap(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("Observation 10"), "{err}");
        std::fs::remove_file(db).ok();
    }

    #[test]
    fn missing_query_is_a_usage_error() {
        let db = write_temp("noquery.facts", DB);
        let err =
            run_count(&args_from(["count", "--db", db.to_str().unwrap()]).unwrap()).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
        std::fs::remove_file(db).ok();
    }

    #[test]
    fn bad_epsilon_is_rejected() {
        let db = write_temp("eps.facts", DB);
        let err = run_count(
            &args_from([
                "count",
                "--db",
                db.to_str().unwrap(),
                "--query",
                "ans(x, y) :- E(x, y)",
                "--epsilon",
                "1.5",
            ])
            .unwrap(),
        )
        .unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
        std::fs::remove_file(db).ok();
    }
}
