//! The `count` and `exact` commands: estimate or exactly compute
//! `|Ans(ϕ, D)|`, reporting which scheme of Figure 1 was used.

use crate::common::{approx_config, load_database, load_query};
use crate::{Args, CliError};
use cqc_core::{
    approx_count_answers, exact_count_answers, fpras_count, fptras_count, CountMethod,
};
use cqc_query::QueryClass;
use std::fmt::Write as _;

/// Which algorithm the user asked for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Method {
    /// Dispatch on the query class (Figure 1).
    Auto,
    /// Force the FPRAS of Theorem 16 (CQs only).
    Fpras,
    /// Force the FPTRAS of Theorems 5 / 13.
    Fptras,
    /// Exact brute-force baseline.
    Exact,
}

fn parse_method(raw: &str) -> Result<Method, CliError> {
    match raw {
        "auto" => Ok(Method::Auto),
        "fpras" => Ok(Method::Fpras),
        "fptras" => Ok(Method::Fptras),
        "exact" | "brute" | "bruteforce" => Ok(Method::Exact),
        other => Err(CliError::Usage(format!(
            "unknown method `{other}` (expected auto | fpras | fptras | exact)"
        ))),
    }
}

/// Run `cqc count`.
pub fn run_count(args: &Args) -> Result<String, CliError> {
    let query = load_query(args)?;
    let db = load_database(args)?;
    let cfg = approx_config(args)?;
    let method = parse_method(args.value_of("method").unwrap_or("auto"))?;
    let quiet = args.switch("quiet");

    let mut out = String::new();
    if !quiet {
        writeln!(out, "query class : {:?}", query.class()).unwrap();
        writeln!(out, "‖ϕ‖         : {}", query.size()).unwrap();
        writeln!(out, "free vars   : {}", query.num_free_vars()).unwrap();
        writeln!(out, "database    : {} elements, {} facts", db.universe_size(), db.fact_count())
            .unwrap();
        writeln!(out, "ε, δ        : {}, {}", cfg.epsilon, cfg.delta).unwrap();
    }

    match method {
        Method::Auto => {
            let r = approx_count_answers(&query, &db, &cfg)
                .map_err(|e| CliError::Count(e.to_string()))?;
            let scheme = match r.method {
                CountMethod::Fpras => "FPRAS (Theorem 16)",
                CountMethod::Fptras => "FPTRAS (Theorems 5/13)",
                CountMethod::Exact => "exact",
            };
            writeln!(out, "scheme      : {scheme}").unwrap();
            writeln!(out, "exact value : {}", r.exact).unwrap();
            writeln!(out, "estimate    : {}", r.estimate).unwrap();
        }
        Method::Fpras => {
            if query.class() != QueryClass::CQ {
                return Err(CliError::Count(
                    "the FPRAS of Theorem 16 applies to plain CQs only; queries with \
                     disequalities or negations admit no FPRAS unless NP = RP \
                     (Observation 10) — use `--method fptras`"
                        .into(),
                ));
            }
            let r = fpras_count(&query, &db, &cfg).map_err(|e| CliError::Count(e.to_string()))?;
            writeln!(out, "scheme      : FPRAS (Theorem 16)").unwrap();
            writeln!(out, "fhw used    : {:.3}", r.fhw).unwrap();
            writeln!(out, "automaton   : {} states over {} tree nodes", r.states, r.tree_nodes)
                .unwrap();
            writeln!(out, "exact value : {}", r.exact).unwrap();
            writeln!(out, "estimate    : {}", r.estimate).unwrap();
        }
        Method::Fptras => {
            let r = fptras_count(&query, &db, &cfg).map_err(|e| CliError::Count(e.to_string()))?;
            writeln!(out, "scheme      : FPTRAS (Theorems 5/13)").unwrap();
            if let Some(tw) = r.query_treewidth {
                writeln!(out, "treewidth   : {tw}").unwrap();
            }
            writeln!(out, "oracle calls: {} EdgeFree, {} Hom", r.oracle_calls, r.hom_calls)
                .unwrap();
            writeln!(out, "repetitions : {}", r.repetitions).unwrap();
            writeln!(out, "exact value : {}", r.exact).unwrap();
            writeln!(out, "estimate    : {}", r.estimate).unwrap();
        }
        Method::Exact => {
            let v = exact_count_answers(&query, &db);
            writeln!(out, "scheme      : exact (brute-force baseline)").unwrap();
            writeln!(out, "estimate    : {v}").unwrap();
        }
    }
    Ok(out)
}

/// Run `cqc exact`.
pub fn run_exact(args: &Args) -> Result<String, CliError> {
    let query = load_query(args)?;
    let db = load_database(args)?;
    let v = exact_count_answers(&query, &db);
    Ok(format!("{v}\n"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args_from;
    use std::path::PathBuf;

    fn write_temp(name: &str, contents: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("cqc-cli-test-{}-{name}", std::process::id()));
        std::fs::write(&path, contents).unwrap();
        path
    }

    const DB: &str = "\
universe 6
relation E 2
E 0 1
E 0 2
E 1 2
E 2 3
E 3 4
E 3 5
E 5 0
";

    #[test]
    fn method_parsing() {
        assert_eq!(parse_method("auto").unwrap(), Method::Auto);
        assert_eq!(parse_method("fpras").unwrap(), Method::Fpras);
        assert_eq!(parse_method("fptras").unwrap(), Method::Fptras);
        assert_eq!(parse_method("brute").unwrap(), Method::Exact);
        assert!(parse_method("magic").is_err());
    }

    #[test]
    fn exact_command_counts_the_friends_query() {
        let db = write_temp("exact.facts", DB);
        let out = run_exact(
            &args_from([
                "exact",
                "--db",
                db.to_str().unwrap(),
                "--query",
                "ans(x) :- E(x, y), E(x, z), y != z",
            ])
            .unwrap(),
        )
        .unwrap();
        assert_eq!(out.trim(), "2");
        std::fs::remove_file(db).ok();
    }

    #[test]
    fn count_auto_dispatches_and_reports() {
        let db = write_temp("auto.facts", DB);
        let out = run_count(
            &args_from([
                "count",
                "--db",
                db.to_str().unwrap(),
                "--query",
                "ans(x) :- E(x, y), E(x, z), y != z",
                "--epsilon",
                "0.2",
                "--seed",
                "7",
            ])
            .unwrap(),
        )
        .unwrap();
        assert!(out.contains("FPTRAS"), "{out}");
        assert!(out.contains("estimate"), "{out}");
        std::fs::remove_file(db).ok();
    }

    #[test]
    fn fpras_is_refused_for_dcqs() {
        let db = write_temp("refuse.facts", DB);
        let err = run_count(
            &args_from([
                "count",
                "--db",
                db.to_str().unwrap(),
                "--query",
                "ans(x) :- E(x, y), E(x, z), y != z",
                "--method",
                "fpras",
            ])
            .unwrap(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("Observation 10"), "{err}");
        std::fs::remove_file(db).ok();
    }

    #[test]
    fn missing_query_is_a_usage_error() {
        let db = write_temp("noquery.facts", DB);
        let err = run_count(
            &args_from(["count", "--db", db.to_str().unwrap()]).unwrap(),
        )
        .unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
        std::fs::remove_file(db).ok();
    }

    #[test]
    fn bad_epsilon_is_rejected() {
        let db = write_temp("eps.facts", DB);
        let err = run_count(
            &args_from([
                "count",
                "--db",
                db.to_str().unwrap(),
                "--query",
                "ans(x, y) :- E(x, y)",
                "--epsilon",
                "1.5",
            ])
            .unwrap(),
        )
        .unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
        std::fs::remove_file(db).ok();
    }
}
