//! `cqc audit` — run the determinism & unsafety static-analysis pass.
//!
//! ```text
//! cqc audit                         # human-readable diagnostics, exit 0/1
//! cqc audit --format json           # machine-readable report on stdout
//! cqc audit --format json --out AUDIT_report.json
//! cqc audit --root path/to/workspace
//! ```
//!
//! Exit codes: 0 — clean; 1 — unwaived violations (the rendered
//! diagnostics are still printed); 2 — usage errors. The report is
//! written to `--out` in every case, so CI can upload the artifact even
//! from a failing run.

use crate::{Args, CliError};
use std::path::PathBuf;

/// Run `cqc audit`. On a clean tree the rendered report is returned as
/// the command output; violations are surfaced as [`CliError::Audit`] so
/// the binary can exit 1 (distinct from usage errors, which exit 2).
pub fn run_audit(args: &Args) -> Result<String, CliError> {
    let root = match args.value_of("root") {
        Some(r) => PathBuf::from(r),
        None => find_workspace_root()?,
    };
    let format = args.value_of("format").unwrap_or("text").to_string();
    if format != "text" && format != "json" {
        return Err(CliError::Usage(format!(
            "--format must be `text` or `json`, got `{format}`"
        )));
    }
    let out_path = args.value_of("out").map(str::to_string);
    args.reject_unknown()?;

    if !root.join("Cargo.toml").is_file() {
        return Err(CliError::Usage(format!(
            "audit root `{}` has no Cargo.toml — point --root at the workspace root",
            root.display()
        )));
    }

    let report = cqc_audit::audit(&root)
        .map_err(|e| CliError::Io(format!("audit walk over `{}`: {e}", root.display())))?;

    let rendered = match format.as_str() {
        "json" => cqc_audit::render_json(&report),
        _ => cqc_audit::render_text(&report),
    };
    if let Some(path) = out_path {
        // Always write the JSON artifact, whatever the stdout format: the
        // CI leg uploads it from failing runs too.
        std::fs::write(&path, cqc_audit::render_json(&report))
            .map_err(|e| CliError::Io(format!("writing `{path}`: {e}")))?;
    }
    if report.is_clean() {
        Ok(rendered)
    } else {
        Err(CliError::Audit(rendered))
    }
}

/// Ascend from the current directory to the nearest directory whose
/// `Cargo.toml` declares a `[workspace]`.
fn find_workspace_root() -> Result<PathBuf, CliError> {
    let mut dir = std::env::current_dir()
        .map_err(|e| CliError::Io(format!("cannot determine current directory: {e}")))?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = std::fs::read_to_string(&manifest).unwrap_or_default();
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err(CliError::Usage(
                "no workspace root found above the current directory; pass --root".to_string(),
            ));
        }
    }
}
