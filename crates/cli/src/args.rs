//! A small, dependency-free command-line argument parser.
//!
//! The CLI accepts a subcommand followed by `--flag value` / `--flag=value`
//! options and bare `--switch` flags. Everything is collected up front so the
//! individual commands can pull out what they need and reject leftovers.

use crate::CliError;
use std::collections::BTreeMap;
use std::str::FromStr;

/// Parsed command-line arguments: the subcommand, its options and switches.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The subcommand (first positional argument), if any.
    pub command: Option<String>,
    /// `--key value` and `--key=value` options.
    options: BTreeMap<String, String>,
    /// Bare `--switch` flags.
    switches: Vec<String>,
    /// Positional arguments after the subcommand.
    positional: Vec<String>,
    /// Option keys that have been consumed by the command.
    consumed: std::cell::RefCell<Vec<String>>,
}

/// The switches that do not take a value.
const KNOWN_SWITCHES: &[&str] = &["symmetric", "help", "exact", "quiet", "names"];

impl Args {
    /// Parse raw arguments (excluding the program name).
    pub fn parse(argv: &[String]) -> Result<Self, CliError> {
        let mut args = Args::default();
        let mut i = 0;
        while i < argv.len() {
            let token = &argv[i];
            if let Some(stripped) = token.strip_prefix("--") {
                if let Some((key, value)) = stripped.split_once('=') {
                    args.options.insert(key.to_string(), value.to_string());
                } else if KNOWN_SWITCHES.contains(&stripped) {
                    args.switches.push(stripped.to_string());
                } else {
                    let value = argv.get(i + 1).ok_or_else(|| {
                        CliError::Usage(format!("option `--{stripped}` expects a value"))
                    })?;
                    if value.starts_with("--") {
                        return Err(CliError::Usage(format!(
                            "option `--{stripped}` expects a value, found `{value}`"
                        )));
                    }
                    args.options.insert(stripped.to_string(), value.clone());
                    i += 1;
                }
            } else if args.command.is_none() {
                args.command = Some(token.clone());
            } else {
                args.positional.push(token.clone());
            }
            i += 1;
        }
        Ok(args)
    }

    /// The raw value of an option, if present.
    pub fn value_of(&self, key: &str) -> Option<&str> {
        self.consumed.borrow_mut().push(key.to_string());
        self.options.get(key).map(String::as_str)
    }

    /// A required option.
    pub fn require(&self, key: &str) -> Result<&str, CliError> {
        self.value_of(key)
            .ok_or_else(|| CliError::Usage(format!("missing required option `--{key}`")))
    }

    /// Parse an optional numeric (or otherwise `FromStr`) option with a
    /// default value.
    pub fn get_or<T>(&self, key: &str, default: T) -> Result<T, CliError>
    where
        T: FromStr,
        <T as FromStr>::Err: std::fmt::Display,
    {
        match self.value_of(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse::<T>()
                .map_err(|e| CliError::Usage(format!("invalid value `{raw}` for `--{key}`: {e}"))),
        }
    }

    /// Parse a required `FromStr` option.
    pub fn get_required<T>(&self, key: &str) -> Result<T, CliError>
    where
        T: FromStr,
        <T as FromStr>::Err: std::fmt::Display,
    {
        let raw = self.require(key)?;
        raw.parse::<T>()
            .map_err(|e| CliError::Usage(format!("invalid value `{raw}` for `--{key}`: {e}")))
    }

    /// Whether a bare switch was given.
    pub fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// Positional arguments after the subcommand.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// Reject options that no command consumed — catches typos like
    /// `--epsilo 0.1` early instead of silently ignoring them.
    pub fn reject_unknown(&self) -> Result<(), CliError> {
        let consumed = self.consumed.borrow();
        for key in self.options.keys() {
            if !consumed.iter().any(|c| c == key) {
                return Err(CliError::Usage(format!("unknown option `--{key}`")));
            }
        }
        Ok(())
    }
}

/// Convenience for tests and the binary: build `Args` from string literals.
pub fn args_from<I, S>(items: I) -> Result<Args, CliError>
where
    I: IntoIterator<Item = S>,
    S: Into<String>,
{
    let v: Vec<String> = items.into_iter().map(Into::into).collect();
    Args::parse(&v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_subcommand_options_and_switches() {
        let a = args_from([
            "count",
            "--query",
            "ans(x) :- E(x, y)",
            "--epsilon=0.1",
            "--quiet",
        ])
        .unwrap();
        assert_eq!(a.command.as_deref(), Some("count"));
        assert_eq!(a.value_of("query"), Some("ans(x) :- E(x, y)"));
        assert_eq!(a.value_of("epsilon"), Some("0.1"));
        assert!(a.switch("quiet"));
        assert!(!a.switch("symmetric"));
    }

    #[test]
    fn numeric_options_with_defaults() {
        let a = args_from(["count", "--epsilon", "0.5"]).unwrap();
        assert_eq!(a.get_or("epsilon", 0.25f64).unwrap(), 0.5);
        assert_eq!(a.get_or("delta", 0.05f64).unwrap(), 0.05);
        assert!(a.get_or::<u64>("epsilon", 7).is_err());
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(args_from(["count", "--query"]).is_err());
        assert!(args_from(["count", "--query", "--db"]).is_err());
    }

    #[test]
    fn required_options() {
        let a = args_from(["count", "--db", "x.facts"]).unwrap();
        assert_eq!(a.require("db").unwrap(), "x.facts");
        assert!(a.require("query").is_err());
        assert!(a.get_required::<f64>("missing").is_err());
    }

    #[test]
    fn unknown_options_are_rejected() {
        let a = args_from(["count", "--epsilo", "0.1"]).unwrap();
        // nothing consumed `--epsilo`
        assert!(a.reject_unknown().is_err());
        let b = args_from(["count", "--epsilon", "0.1"]).unwrap();
        let _ = b.value_of("epsilon");
        assert!(b.reject_unknown().is_ok());
    }

    #[test]
    fn positional_arguments_are_collected() {
        let a = args_from(["classify", "extra1", "extra2"]).unwrap();
        assert_eq!(
            a.positional(),
            &["extra1".to_string(), "extra2".to_string()]
        );
    }
}
