//! The `loadgen` command: a deterministic closed-loop load generator for
//! the TCP serving front end (see `cqc-net`).
//!
//! By default the command self-hosts a server on an ephemeral loopback
//! port, drives it with the seeded request mix of `cqc_workloads::mix`,
//! shuts it down gracefully, and reports throughput plus latency
//! percentiles, writing the machine-readable report to `BENCH_serve.json`.
//! `--connect ADDR` drives an already-running server instead.
//!
//! The per-run transcript (response lines in request order) is the
//! determinism witness: two runs with the same `--seed` produce
//! byte-identical transcripts whatever `--connections`, `--workers`,
//! `--shards` or `--protocol` say. `--transcript PATH` saves it for
//! comparison; CI diffs two runs on every push.

use crate::common::approx_config;
use crate::{Args, CliError};
use cqc_net::loadgen::{
    bench_json, obs_bench_json, obs_overhead, run_against, run_scaling, scaling_bench_json,
    transcript_fingerprint, LoadgenOptions, Protocol,
};
use cqc_net::{NetConfig, RunningServer};
use cqc_serve::ServerConfig;
use std::net::{SocketAddr, ToSocketAddrs};

/// Measured `(observability-off, observability-on)` pairs an `--obs-bench`
/// run produces, in repeat order. A single back-to-back pair is too noisy
/// to commit — scheduler jitter regularly makes the *second* run of a pair
/// faster, reporting a nonsensical negative overhead — so the bench runs
/// several interleaved pairs and reports the median.
const OBS_BENCH_REPEATS: usize = 5;

/// The extra measurements of an `--obs-bench` run: every measured
/// `(off, on)` pair and the merged trace of the observability-on runs.
struct ObsRun {
    pairs: Vec<(cqc_net::LoadReport, cqc_net::LoadReport)>,
    trace: cqc_obs::trace::Trace,
}

/// Flip every observability recorder — tracer, wide-event log, flight
/// recorder — together. The obs bench measures the whole stack, not just
/// the tracer.
fn set_observability(on: bool) {
    cqc_obs::trace::set_enabled(on);
    cqc_obs::wide::set_enabled(on);
    cqc_obs::flight::set_enabled(on);
}

/// Drive `addr` with the mix. Plain runs honour `trace` (tracing on for
/// the run, drained by the caller). `--obs-bench` runs measure the full
/// observability stack: a discarded warm-up (plan cache, pool spin-up),
/// then [`OBS_BENCH_REPEATS`] interleaved `(off, on)` pairs — same server,
/// same mix — summarised by their median overhead.
fn execute(
    addr: SocketAddr,
    options: &LoadgenOptions,
    obs_bench: bool,
    trace: bool,
) -> std::io::Result<(cqc_net::LoadReport, Option<ObsRun>)> {
    if !obs_bench {
        cqc_obs::trace::set_enabled(trace);
        let report = run_against(addr, options);
        cqc_obs::trace::set_enabled(false);
        return Ok((report?, None));
    }
    set_observability(false);
    let _ = cqc_obs::trace::drain(); // isolate from earlier traffic
    cqc_obs::flight::reset();
    run_against(addr, options)?; // warm-up, discarded
    let mut pairs = Vec::with_capacity(OBS_BENCH_REPEATS);
    let mut events = Vec::new();
    let mut dropped = 0;
    for _ in 0..OBS_BENCH_REPEATS {
        let off = run_against(addr, options)?;
        set_observability(true);
        let on = run_against(addr, options);
        set_observability(false);
        let mut t = cqc_obs::trace::drain();
        events.append(&mut t.events);
        dropped += t.dropped;
        cqc_obs::flight::reset(); // each pair starts with empty rings
        pairs.push((off, on?));
    }
    let trace = cqc_obs::trace::Trace { events, dropped };
    let first_off = pairs[0].0.clone();
    Ok((first_off, Some(ObsRun { pairs, trace })))
}

/// Run `cqc loadgen`.
pub fn run_loadgen(args: &Args) -> Result<String, CliError> {
    let cfg = approx_config(args)?;
    let requests: usize = args.get_or("requests", 100)?;
    if requests == 0 {
        return Err(CliError::Usage("`--requests` must be at least 1".into()));
    }
    let connections: usize = args.get_or("connections", 4)?;
    if connections == 0 {
        return Err(CliError::Usage("`--connections` must be at least 1".into()));
    }
    let protocol = match args.value_of("protocol") {
        None => Protocol::Http,
        Some(raw) => Protocol::parse(raw).ok_or_else(|| {
            CliError::Usage(format!("unknown protocol `{raw}` (expected http | ndjson)"))
        })?,
    };
    let shards: Option<usize> =
        match args.value_of("shards") {
            None => None,
            Some(raw) => Some(raw.parse().map_err(|e| {
                CliError::Usage(format!("invalid value `{raw}` for `--shards`: {e}"))
            })?),
        };
    if shards == Some(0) {
        return Err(CliError::Usage("`--shards` must be at least 1".into()));
    }
    let method = args.value_of("method").map(str::to_string);
    // `--suite <class>` swaps the curated mix for the enumerated suite of
    // one Figure-1 class; unknown class names are structured usage errors
    // (exit code 2), not silent fallbacks.
    let suite = match args.value_of("suite") {
        None => None,
        Some(raw) => Some(cqc_workloads::parse_class(raw).ok_or_else(|| {
            CliError::Usage(format!(
                "unknown suite class `{raw}` (expected cq | dcq | ecq)"
            ))
        })?),
    };
    // The mix carries its own per-request accuracy defaults; explicit
    // `--epsilon`/`--delta` override them for every request (passing the
    // validated values through `approx_config`).
    let accuracy = if args.value_of("epsilon").is_some() || args.value_of("delta").is_some() {
        Some((cfg.epsilon, cfg.delta))
    } else {
        None
    };
    let options = LoadgenOptions {
        requests,
        connections,
        seed: cfg.seed,
        shards,
        method,
        accuracy,
        protocol,
        suite,
    };

    // Tracing and the tracing-overhead bench are managed here, not in
    // `run()`: `--obs-bench` needs a tracing-off run before the tracing-on
    // one, against one shared server.
    let trace_path = args.value_of("trace").map(str::to_string);
    let obs_bench_path = args.value_of("obs-bench").map(str::to_string);

    // `--scaling 64,256,1024` sweeps the same mix across connection
    // counts; it has its own report shape and exits early.
    if let Some(raw) = args.value_of("scaling") {
        if obs_bench_path.is_some() || trace_path.is_some() {
            return Err(CliError::Usage(
                "`--scaling` cannot be combined with `--obs-bench` or `--trace`".into(),
            ));
        }
        let raw = raw.to_string();
        return run_scaling_sweep(args, &raw, &options, &cfg);
    }

    // Self-host unless `--connect` points at a running server.
    let (report, obs, hosted) = match args.value_of("connect") {
        Some(raw) => {
            let addr = raw
                .to_socket_addrs()
                .map_err(|e| CliError::Usage(format!("cannot resolve `{raw}`: {e}")))?
                .next()
                .ok_or_else(|| CliError::Usage(format!("`{raw}` resolves to no address")))?;
            let (report, obs) = execute(
                addr,
                &options,
                obs_bench_path.is_some(),
                trace_path.is_some(),
            )
            .map_err(|e| CliError::Io(format!("loadgen against {addr}: {e}")))?;
            (report, obs, None)
        }
        None => {
            let server = RunningServer::bind(
                "127.0.0.1:0",
                NetConfig {
                    serve: ServerConfig {
                        threads: cfg.threads,
                        epsilon: cfg.epsilon,
                        delta: cfg.delta,
                        ..ServerConfig::default()
                    },
                    max_requests: None,
                    ..NetConfig::default()
                },
            )
            .map_err(|e| CliError::Io(format!("cannot bind loopback server: {e}")))?;
            let addr = server.addr();
            let (report, obs) = execute(
                addr,
                &options,
                obs_bench_path.is_some(),
                trace_path.is_some(),
            )
            .map_err(|e| CliError::Io(format!("loadgen against {addr}: {e}")))?;
            let served = server.shutdown();
            (report, obs, Some((addr, served)))
        }
    };

    let bench_path = args.get_or("bench-out", "BENCH_serve.json".to_string())?;
    std::fs::write(&bench_path, format!("{}\n", bench_json(&report)))
        .map_err(|e| CliError::Io(format!("cannot write `{bench_path}`: {e}")))?;
    let transcript_path = args.value_of("transcript").map(str::to_string);
    if let Some(path) = &transcript_path {
        std::fs::write(path, &report.transcript)
            .map_err(|e| CliError::Io(format!("cannot write `{path}`: {e}")))?;
    }
    if let (Some(path), Some(obs)) = (&obs_bench_path, &obs) {
        let doc = obs_bench_json(&obs.pairs, obs.trace.events.len() as u64);
        std::fs::write(path, format!("{doc}\n"))
            .map_err(|e| CliError::Io(format!("cannot write `{path}`: {e}")))?;
    }
    let mut trace_events = None;
    if let Some(path) = &trace_path {
        // With `--obs-bench` the trace of the tracing-on run was already
        // drained by `execute`; a plain traced run drains here.
        let trace = match &obs {
            Some(obs) => obs.trace.clone(),
            None => cqc_obs::trace::drain(),
        };
        trace_events = Some(trace.events.len() as u64);
        std::fs::write(path, trace.to_ndjson())
            .map_err(|e| CliError::Io(format!("cannot write `{path}`: {e}")))?;
    }

    let mut text = String::new();
    if !args.switch("quiet") {
        match hosted {
            Some((addr, served)) => text.push_str(&format!(
                "server      : self-hosted on {addr}, served {served} request(s)\n"
            )),
            None => text.push_str("server      : external (--connect)\n"),
        }
        text.push_str(&format!(
            "loadgen     : {requests} request(s), {connections} connection(s), protocol={}, mix={}, seed={}, shards={}, method={}\n",
            options.protocol.name(),
            options
                .suite
                .map_or("curated".to_string(), |c| {
                    format!("suite:{}", cqc_workloads::class_name(c))
                }),
            options.seed,
            options
                .shards
                .map_or("request-default".to_string(), |s| s.to_string()),
            options.method.as_deref().unwrap_or("auto"),
        ));
        text.push_str(&format!(
            "throughput  : {:.1} req/s over {:.3} s\n",
            report.throughput_rps,
            report.wall.as_secs_f64()
        ));
        text.push_str(&format!(
            "latency_ms  : p50={:.3} p95={:.3} p99={:.3}\n",
            report.p50_ms, report.p95_ms, report.p99_ms
        ));
        text.push_str(&format!(
            "responses   : {} error(s), {} byte(s), transcript fnv1a {:016x}\n",
            report.errors,
            report.bytes_received,
            transcript_fingerprint(&report.transcript)
        ));
        text.push_str(&format!("bench       : wrote {bench_path}\n"));
        if let Some(path) = &transcript_path {
            text.push_str(&format!("transcript  : wrote {path}\n"));
        }
        if let (Some(path), Some(obs)) = (&obs_bench_path, &obs) {
            let stats = obs_overhead(&obs.pairs);
            let identical = obs.pairs.iter().all(|(off, on)| {
                off.transcript == report.transcript && on.transcript == report.transcript
            });
            text.push_str(&format!(
                "obs bench   : wrote {path} ({} repeat(s), median overhead {:+.2}%, min {:+.2}%, {} event(s), transcripts identical: {})\n",
                obs.pairs.len(),
                stats.median_pct,
                stats.min_pct,
                obs.trace.events.len(),
                identical,
            ));
        }
        if let (Some(path), Some(events)) = (&trace_path, trace_events) {
            text.push_str(&format!(
                "trace       : wrote {events} event(s) to {path}\n"
            ));
        }
    }
    Ok(text)
}

/// `cqc loadgen --scaling C1,C2,…`: replay the same mix at each connection
/// count (see `cqc_net::loadgen::run_scaling`) and write the
/// `serve_scaling` bench document. Transcript divergence across points is
/// a hard error (non-zero exit) — determinism under concurrency is the
/// contract the sweep exists to witness.
fn run_scaling_sweep(
    args: &Args,
    raw_counts: &str,
    options: &LoadgenOptions,
    cfg: &cqc_core::ApproxConfig,
) -> Result<String, CliError> {
    let counts: Vec<usize> = raw_counts
        .split(',')
        .map(|part| {
            let n: usize = part.trim().parse().map_err(|e| {
                CliError::Usage(format!("invalid `--scaling` count `{}`: {e}", part.trim()))
            })?;
            if n == 0 {
                return Err(CliError::Usage(
                    "`--scaling` counts must be at least 1".into(),
                ));
            }
            Ok(n)
        })
        .collect::<Result<_, _>>()?;
    if counts.is_empty() {
        return Err(CliError::Usage(
            "`--scaling` needs at least one connection count".into(),
        ));
    }
    let max_count = counts.iter().copied().max().unwrap_or(1);

    // Self-host unless `--connect` points at a running server; the hosted
    // server's admission caps are raised above the largest point, so the
    // sweep measures the curve instead of tripping its own load shedding.
    let (report, hosted) = match args.value_of("connect") {
        Some(raw) => {
            let addr = raw
                .to_socket_addrs()
                .map_err(|e| CliError::Usage(format!("cannot resolve `{raw}`: {e}")))?
                .next()
                .ok_or_else(|| CliError::Usage(format!("`{raw}` resolves to no address")))?;
            let report = run_scaling(addr, options, &counts)
                .map_err(|e| CliError::Io(format!("scaling sweep against {addr}: {e}")))?;
            (report, None)
        }
        None => {
            let server = RunningServer::bind(
                "127.0.0.1:0",
                NetConfig {
                    serve: ServerConfig {
                        threads: cfg.threads,
                        epsilon: cfg.epsilon,
                        delta: cfg.delta,
                        ..ServerConfig::default()
                    },
                    max_requests: None,
                    max_connections: max_count + 16,
                    dispatch_queue_limit: max_count.max(256),
                    ..NetConfig::default()
                },
            )
            .map_err(|e| CliError::Io(format!("cannot bind loopback server: {e}")))?;
            let addr = server.addr();
            let report = run_scaling(addr, options, &counts)
                .map_err(|e| CliError::Io(format!("scaling sweep against {addr}: {e}")))?;
            let served = server.shutdown();
            (report, Some((addr, served)))
        }
    };

    // The bench document is written before the divergence check, so a
    // failing sweep still leaves the evidence on disk.
    let bench_path = args.get_or("bench-out", "BENCH_serve.json".to_string())?;
    std::fs::write(&bench_path, format!("{}\n", scaling_bench_json(&report)))
        .map_err(|e| CliError::Io(format!("cannot write `{bench_path}`: {e}")))?;
    if let Some(path) = args.value_of("transcript") {
        let transcript = report
            .points
            .first()
            .map_or("", |p| p.report.transcript.as_str());
        std::fs::write(path, transcript)
            .map_err(|e| CliError::Io(format!("cannot write `{path}`: {e}")))?;
    }
    if !report.transcripts_identical {
        return Err(CliError::Count(format!(
            "connection-scaling transcripts diverged across {:?} connections (seed {}): \
             responses depended on concurrency",
            counts, report.options.seed
        )));
    }

    let mut text = String::new();
    if !args.switch("quiet") {
        match hosted {
            Some((addr, served)) => text.push_str(&format!(
                "server      : self-hosted on {addr}, served {served} request(s)\n"
            )),
            None => text.push_str("server      : external (--connect)\n"),
        }
        text.push_str(&format!(
            "scaling     : {} request(s)/point, protocol={}, seed={}, method={}, {} point(s)\n",
            report.options.requests,
            report.options.protocol.name(),
            report.options.seed,
            report.options.method.as_deref().unwrap_or("auto"),
            report.points.len(),
        ));
        for point in &report.points {
            text.push_str(&format!(
                "  c={:<6}: {:8.1} req/s  p50={:.3} p95={:.3} p99={:.3} ms  {} error(s)\n",
                point.connections,
                point.report.throughput_rps,
                point.report.p50_ms,
                point.report.p95_ms,
                point.report.p99_ms,
                point.report.errors,
            ));
        }
        text.push_str("transcripts : identical across all points\n");
        text.push_str(&format!("bench       : wrote {bench_path}\n"));
    }
    Ok(text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args_from;
    use std::path::PathBuf;

    fn temp(name: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("cqc-cli-loadgen-{}-{name}", std::process::id()));
        path
    }

    #[test]
    fn loadgen_self_hosts_and_writes_reports() {
        let bench = temp("bench.json");
        let transcript = temp("transcript.ndjson");
        let out = run_loadgen(
            &args_from([
                "loadgen",
                "--requests",
                "6",
                "--connections",
                "2",
                "--seed",
                "11",
                "--method",
                "exact",
                "--bench-out",
                bench.to_str().unwrap(),
                "--transcript",
                transcript.to_str().unwrap(),
            ])
            .unwrap(),
        )
        .unwrap();
        assert!(out.contains("loadgen     : 6 request(s)"), "{out}");
        assert!(out.contains("responses   : 0 error(s)"), "{out}");
        let bench_text = std::fs::read_to_string(&bench).unwrap();
        assert!(
            cqc_serve::json::parse(bench_text.trim()).is_ok(),
            "{bench_text}"
        );
        let lines = std::fs::read_to_string(&transcript).unwrap();
        assert_eq!(lines.lines().count(), 6);
        std::fs::remove_file(bench).ok();
        std::fs::remove_file(transcript).ok();
    }

    #[test]
    fn same_seed_same_transcript_different_concurrency() {
        let runs: Vec<String> = [("1", "a"), ("3", "b")]
            .into_iter()
            .map(|(connections, tag)| {
                let transcript = temp(&format!("det-{tag}.ndjson"));
                let bench = temp(&format!("det-{tag}-bench.json"));
                run_loadgen(
                    &args_from([
                        "loadgen",
                        "--requests",
                        "8",
                        "--connections",
                        connections,
                        "--seed",
                        "99",
                        "--method",
                        "exact",
                        "--protocol",
                        if tag == "a" { "http" } else { "ndjson" },
                        "--bench-out",
                        bench.to_str().unwrap(),
                        "--transcript",
                        transcript.to_str().unwrap(),
                        "--quiet",
                    ])
                    .unwrap(),
                )
                .unwrap();
                let text = std::fs::read_to_string(&transcript).unwrap();
                std::fs::remove_file(&transcript).ok();
                std::fs::remove_file(&bench).ok();
                text
            })
            .collect();
        assert_eq!(
            runs[0], runs[1],
            "transcripts drifted across connections/protocol"
        );
    }

    #[test]
    fn obs_bench_measures_overhead_without_changing_bytes() {
        let bench = temp("obs-bench.json");
        let trace = temp("obs-trace.ndjson");
        let out = run_loadgen(
            &args_from([
                "loadgen",
                "--requests",
                "6",
                "--connections",
                "2",
                "--seed",
                "5",
                "--method",
                "exact",
                "--bench-out",
                temp("obs-serve-bench.json").to_str().unwrap(),
                "--obs-bench",
                bench.to_str().unwrap(),
                "--trace",
                trace.to_str().unwrap(),
            ])
            .unwrap(),
        )
        .unwrap();
        assert!(out.contains("transcripts identical: true"), "{out}");
        let doc = std::fs::read_to_string(&bench).unwrap();
        let v = cqc_serve::json::parse(doc.trim()).unwrap();
        assert_eq!(
            v.get("bench").and_then(|b| b.as_str()),
            Some("obs_trace_overhead")
        );
        assert_eq!(
            v.get("repeats").and_then(|r| r.as_u64()),
            Some(OBS_BENCH_REPEATS as u64)
        );
        assert!(v.get("overhead_pct_median").is_some(), "{doc}");
        assert!(v.get("overhead_pct_min").is_some(), "{doc}");
        assert!(doc.contains("\"transcripts_identical\":true"), "{doc}");
        // the tracing-on run recorded request/work_item spans
        let ndjson = std::fs::read_to_string(&trace).unwrap();
        assert!(ndjson.contains("\"name\":\"request\""), "{ndjson}");
        assert!(ndjson.contains("\"name\":\"work_item\""), "{ndjson}");
        std::fs::remove_file(&bench).ok();
        std::fs::remove_file(&trace).ok();
        std::fs::remove_file(temp("obs-serve-bench.json")).ok();
    }

    #[test]
    fn invalid_options_are_usage_errors() {
        for bad in [
            vec!["loadgen", "--requests", "0"],
            vec!["loadgen", "--connections", "0"],
            vec!["loadgen", "--protocol", "smoke-signals"],
            vec!["loadgen", "--shards", "0"],
            vec!["loadgen", "--connect", "not-an-address"],
            vec!["loadgen", "--suite", "xcq"],
            vec!["loadgen", "--suite", ""],
        ] {
            let err = run_loadgen(&args_from(bad.clone()).unwrap()).unwrap_err();
            assert!(matches!(err, CliError::Usage(_)), "{bad:?} -> {err}");
        }
        // the exit-code convention: usage errors (unknown suite included)
        // exit 2, distinct from audit's 1 and success's 0
        let result = crate::run(&[
            "loadgen".to_string(),
            "--suite".to_string(),
            "xcq".to_string(),
        ]);
        assert_eq!(crate::exit_code(&result), 2);
    }

    #[test]
    fn scaling_sweep_writes_the_curve_and_checks_determinism() {
        let bench = temp("scaling-bench.json");
        let out = run_loadgen(
            &args_from([
                "loadgen",
                "--requests",
                "12",
                "--seed",
                "17",
                "--method",
                "exact",
                "--scaling",
                "2,6",
                "--bench-out",
                bench.to_str().unwrap(),
            ])
            .unwrap(),
        )
        .unwrap();
        assert!(out.contains("scaling     : 12 request(s)/point"), "{out}");
        assert!(out.contains("c=2"), "{out}");
        assert!(out.contains("c=6"), "{out}");
        assert!(
            out.contains("transcripts : identical across all points"),
            "{out}"
        );
        let doc = std::fs::read_to_string(&bench).unwrap();
        let v = cqc_serve::json::parse(doc.trim()).unwrap();
        assert_eq!(
            v.get("bench").and_then(|b| b.as_str()),
            Some("serve_scaling")
        );
        assert!(doc.contains("\"transcripts_identical\":true"), "{doc}");
        std::fs::remove_file(&bench).ok();
    }

    #[test]
    fn scaling_rejects_malformed_counts_and_obs_bench() {
        for bad in [
            vec!["loadgen", "--scaling", ""],
            vec!["loadgen", "--scaling", "0"],
            vec!["loadgen", "--scaling", "4,x"],
            vec!["loadgen", "--scaling", "4", "--obs-bench", "x.json"],
            vec!["loadgen", "--scaling", "4", "--trace", "x.ndjson"],
        ] {
            let err = run_loadgen(&args_from(bad.clone()).unwrap()).unwrap_err();
            assert!(matches!(err, CliError::Usage(_)), "{bad:?} -> {err}");
        }
    }

    #[test]
    fn suite_mix_drives_an_enumerated_class() {
        let bench = temp("suite-bench.json");
        let out = run_loadgen(
            &args_from([
                "loadgen",
                "--requests",
                "4",
                "--connections",
                "2",
                "--seed",
                "21",
                "--suite",
                "dcq",
                "--method",
                "exact",
                "--bench-out",
                bench.to_str().unwrap(),
            ])
            .unwrap(),
        )
        .unwrap();
        assert!(out.contains("mix=suite:DCQ"), "{out}");
        assert!(out.contains("responses   : 0 error(s)"), "{out}");
        let doc = std::fs::read_to_string(&bench).unwrap();
        let v = cqc_serve::json::parse(doc.trim()).unwrap();
        assert_eq!(v.get("suite").and_then(|s| s.as_str()), Some("DCQ"));
        std::fs::remove_file(&bench).ok();
    }
}
