//! The `serve` command: a sharded counting front end over newline-delimited
//! JSON requests (see `cqc-serve`).
//!
//! Requests are read from `--requests PATH` (or standard input when the
//! option is absent) and answered one JSON line per request:
//!
//! ```text
//! {"id": 1, "query": "ans(x) :- E(x, y), E(x, z), y != z",
//!  "db_files": ["monday.facts", "tuesday.facts"], "seed": 7, "shards": 4}
//! ```
//!
//! Work item `i` of a request always runs under the derived seed
//! `split_seed(seed, i)`, so responses are byte-identical for every shard
//! count and pool width — `--shards`/`--workers` tune wall time only.

use crate::common::approx_config;
use crate::{Args, CliError};
use cqc_serve::{Server, ServerConfig};

/// Run `cqc serve`.
pub fn run_serve(args: &Args) -> Result<String, CliError> {
    let cfg = approx_config(args)?;
    let shards: usize = args.get_or("shards", 1)?;
    if shards == 0 {
        return Err(CliError::Usage("`--shards` must be at least 1".into()));
    }
    let server = Server::new(ServerConfig {
        shards,
        threads: cfg.threads,
        epsilon: cfg.epsilon,
        delta: cfg.delta,
        seed: cfg.seed,
    });

    let mut text;
    let served = match args.value_of("requests") {
        Some(path) => {
            let requests = std::fs::read_to_string(path)
                .map_err(|e| CliError::Io(format!("cannot read `{path}`: {e}")))?;
            let mut out = Vec::new();
            let served = server
                .serve_lines(std::io::BufReader::new(requests.as_bytes()), &mut out)
                .map_err(|e| CliError::Count(e.to_string()))?;
            text = String::from_utf8(out).expect("responses are UTF-8");
            served
        }
        None => {
            // Interactive mode: stream each response to stdout as soon as
            // its request line arrives (serve_lines flushes per line), so a
            // client that waits for an answer before sending the next
            // request never deadlocks on run()'s buffered return value.
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            let mut lock = stdout.lock();
            text = String::new();
            server
                .serve_lines(stdin.lock(), &mut lock)
                .map_err(|e| CliError::Count(e.to_string()))?
        }
    };
    if !args.switch("quiet") {
        text.push_str(&format!(
            "served      : {served} request(s), {} cached plan(s), shards={shards}\n",
            server.cached_plans()
        ));
    }
    Ok(text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args_from;
    use std::path::PathBuf;

    fn write_temp(name: &str, contents: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("cqc-cli-serve-{}-{name}", std::process::id()));
        std::fs::write(&path, contents).unwrap();
        path
    }

    const DB: &str = "\
universe 6
relation E 2
E 0 1
E 0 2
E 1 2
E 2 3
E 3 4
E 3 5
E 5 0
";

    fn request_line(db_path: &str, shards: usize) -> String {
        format!(
            r#"{{"id": 9, "query": "ans(x) :- E(x, y), E(x, z), y != z", "db_files": ["{}"], "seed": 5, "shards": {shards}}}"#,
            db_path.replace('\\', "\\\\")
        )
    }

    #[test]
    fn serve_answers_requests_from_a_file() {
        let db = write_temp("db.facts", DB);
        let requests = write_temp(
            "reqs.jsonl",
            &format!(
                "{}\n{}\n",
                request_line(db.to_str().unwrap(), 1),
                request_line(db.to_str().unwrap(), 2)
            ),
        );
        let out =
            run_serve(&args_from(["serve", "--requests", requests.to_str().unwrap()]).unwrap())
                .unwrap();
        assert_eq!(out.matches("\"results\":").count(), 2, "{out}");
        assert!(
            out.contains("served      : 2 request(s), 1 cached plan(s)"),
            "{out}"
        );
        // unsharded and 2-way sharded responses agree byte-for-byte
        // (modulo the echoed shard count)
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(
            lines[0].replace("\"shards\":1", "\"shards\":N"),
            lines[1].replace("\"shards\":2", "\"shards\":N")
        );
        std::fs::remove_file(db).ok();
        std::fs::remove_file(requests).ok();
    }

    #[test]
    fn serve_reports_errors_inline_and_keeps_going() {
        let requests = write_temp("bad.jsonl", "{\"id\": 1}\nnot json\n");
        let out = run_serve(
            &args_from(["serve", "--requests", requests.to_str().unwrap(), "--quiet"]).unwrap(),
        )
        .unwrap();
        assert_eq!(out.lines().count(), 2, "{out}");
        for line in out.lines() {
            assert!(line.contains("\"error\""), "{line}");
        }
        std::fs::remove_file(requests).ok();
    }

    #[test]
    fn zero_shards_is_a_usage_error() {
        let err = run_serve(&args_from(["serve", "--shards", "0"]).unwrap()).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
    }

    #[test]
    fn missing_requests_file_is_an_io_error() {
        let err =
            run_serve(&args_from(["serve", "--requests", "/nonexistent/requests.jsonl"]).unwrap())
                .unwrap_err();
        assert!(matches!(err, CliError::Io(_)));
    }
}
