//! The `serve` command: a sharded counting front end over newline-delimited
//! JSON requests (see `cqc-serve`).
//!
//! Requests are read from `--requests PATH` (or standard input when the
//! option is absent) and answered one JSON line per request:
//!
//! ```text
//! {"id": 1, "query": "ans(x) :- E(x, y), E(x, z), y != z",
//!  "db_files": ["monday.facts", "tuesday.facts"], "seed": 7, "shards": 4}
//! ```
//!
//! Work item `i` of a request always runs under the derived seed
//! `split_seed(seed, i)`, so responses are byte-identical for every shard
//! count and pool width — `--shards`/`--workers` tune wall time only.

use crate::common::approx_config;
use crate::{Args, CliError};
use cqc_net::{NetConfig, RunningServer};
use cqc_serve::{Server, ServerConfig};

/// Run `cqc serve`.
pub fn run_serve(args: &Args) -> Result<String, CliError> {
    let cfg = approx_config(args)?;
    let shards: usize = args.get_or("shards", 1)?;
    if shards == 0 {
        return Err(CliError::Usage("`--shards` must be at least 1".into()));
    }
    let plan_cache: usize = args.get_or("plan-cache", 64)?;
    if plan_cache == 0 {
        return Err(CliError::Usage("`--plan-cache` must be at least 1".into()));
    }
    let server_config = ServerConfig {
        shards,
        threads: cfg.threads,
        epsilon: cfg.epsilon,
        delta: cfg.delta,
        seed: cfg.seed,
        plan_cache_capacity: plan_cache,
        // The fail-injection hooks are for test harnesses driving library
        // servers; the CLI never honours them.
        fail_injection: false,
    };
    if let Some(listen) = args.value_of("listen") {
        return run_listen(args, listen, server_config);
    }
    let server = Server::new(server_config);

    let mut text;
    let served = match args.value_of("requests") {
        Some(path) => {
            let requests = std::fs::read_to_string(path)
                .map_err(|e| CliError::Io(format!("cannot read `{path}`: {e}")))?;
            let mut out = Vec::new();
            let served = server
                .serve_lines(std::io::BufReader::new(requests.as_bytes()), &mut out)
                .map_err(|e| CliError::Count(e.to_string()))?;
            text = String::from_utf8(out).expect("responses are UTF-8");
            served
        }
        None => {
            // Interactive mode: stream each response to stdout as soon as
            // its request line arrives (serve_lines flushes per line), so a
            // client that waits for an answer before sending the next
            // request never deadlocks on run()'s buffered return value.
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            let mut lock = stdout.lock();
            text = String::new();
            server
                .serve_lines(stdin.lock(), &mut lock)
                .map_err(|e| CliError::Count(e.to_string()))?
        }
    };
    if !args.switch("quiet") {
        text.push_str(&format!(
            "served      : {served} request(s), {} cached plan(s), shards={shards}\n",
            server.cached_plans()
        ));
    }
    Ok(text)
}

/// Parse an optional numeric flag; `None` when absent.
fn parse_flag<T: std::str::FromStr>(args: &Args, name: &str) -> Result<Option<T>, CliError>
where
    T::Err: std::fmt::Display,
{
    match args.value_of(name) {
        None => Ok(None),
        Some(raw) => raw
            .parse()
            .map(Some)
            .map_err(|e| CliError::Usage(format!("invalid value `{raw}` for `--{name}`: {e}"))),
    }
}

/// `cqc serve --listen ADDR`: the TCP front end (HTTP/1.1 + raw NDJSON on
/// one port, see `cqc-net`). Blocks until a *line* arrives on stdin — the
/// command's "signal pipe": interactive users press Enter, supervisors
/// `echo stop > the-fifo` — or until `--max-requests` is reached; either
/// way the shutdown is graceful (in-flight requests finish). Plain EOF is
/// deliberately not a signal, so a detached server with stdin closed
/// (`< /dev/null`) keeps running until killed.
fn run_listen(args: &Args, listen: &str, server_config: ServerConfig) -> Result<String, CliError> {
    let max_requests = match args.value_of("max-requests") {
        None => None,
        Some(raw) => {
            let n: u64 = raw.parse().map_err(|e| {
                CliError::Usage(format!("invalid value `{raw}` for `--max-requests`: {e}"))
            })?;
            if n == 0 {
                return Err(CliError::Usage(
                    "`--max-requests` must be at least 1".into(),
                ));
            }
            Some(n)
        }
    };
    let addr_file = args.value_of("addr-file").map(str::to_string);
    let mut net_config = NetConfig {
        serve: server_config,
        max_requests,
        ..NetConfig::default()
    };
    if let Some(n) = parse_flag::<usize>(args, "max-connections")? {
        if n == 0 {
            return Err(CliError::Usage(
                "`--max-connections` must be at least 1".into(),
            ));
        }
        net_config.max_connections = n;
    }
    if let Some(n) = parse_flag::<usize>(args, "queue-limit")? {
        if n == 0 {
            return Err(CliError::Usage("`--queue-limit` must be at least 1".into()));
        }
        net_config.dispatch_queue_limit = n;
    }
    // `--dispatch-workers 0` is allowed: it means "auto" (sized from the
    // machine), the same as omitting the flag.
    if let Some(n) = parse_flag::<usize>(args, "dispatch-workers")? {
        net_config.dispatch_workers = n;
    }
    // Post-hoc observability: the wide-event request log (`--request-log`),
    // the slow-request dump threshold (`--slow-ms`) and the flight-dump
    // directory (`--flight-dir`). The flight recorder and wide-event
    // recording are always on in listen mode — they are bounded, invisible
    // to response bytes, and what makes `/debug/*` useful without advance
    // warning; the file sinks remain opt-in.
    net_config.request_log = args.value_of("request-log").map(std::path::PathBuf::from);
    if let Some(ms) = parse_flag::<u64>(args, "slow-ms")? {
        if ms == 0 {
            return Err(CliError::Usage("`--slow-ms` must be at least 1".into()));
        }
        net_config.slow_ms = Some(ms);
    }
    net_config.flight_dir = args.value_of("flight-dir").map(std::path::PathBuf::from);
    cqc_obs::wide::set_enabled(true);
    cqc_obs::flight::set_enabled(true);
    let server = RunningServer::bind(listen, net_config)
        .map_err(|e| CliError::Io(format!("cannot listen on `{listen}`: {e}")))?;
    let addr = server.addr();
    if let Some(path) = addr_file {
        std::fs::write(&path, format!("{addr}\n"))
            .map_err(|e| CliError::Io(format!("cannot write `{path}`: {e}")))?;
    }
    // The readiness line goes to stderr immediately (stdout carries the
    // final report only after shutdown).
    eprintln!("cqc serve: listening on {addr} (http + ndjson); send a line to stdin to shut down");
    let handle = server.handle();
    // The signal pipe: a detached reader signals graceful shutdown when a
    // line arrives on stdin (`echo stop > the-fifo`). Plain EOF — a closed
    // stdin, e.g. `< /dev/null` on a detached server — is deliberately
    // *not* a signal, so daemonised servers run until killed or until
    // `--max-requests` fires (in which case the process exits and takes
    // this thread with it).
    std::thread::Builder::new()
        .name("cqc-serve-signal-pipe".into())
        .spawn(move || {
            let stdin = std::io::stdin();
            let mut line = String::new();
            match std::io::BufRead::read_line(&mut stdin.lock(), &mut line) {
                Ok(0) | Err(_) => {} // EOF/unreadable: park, never signal
                Ok(_) => handle.signal(),
            }
        })
        .map_err(|e| CliError::Io(format!("cannot spawn the signal-pipe thread: {e}")))?;
    let served = server.wait();
    let mut text = String::new();
    if !args.switch("quiet") {
        text.push_str(&format!(
            "served      : {served} request(s) on {addr} (http + ndjson)\n"
        ));
    }
    Ok(text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args_from;
    use std::path::PathBuf;

    fn write_temp(name: &str, contents: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("cqc-cli-serve-{}-{name}", std::process::id()));
        std::fs::write(&path, contents).unwrap();
        path
    }

    const DB: &str = "\
universe 6
relation E 2
E 0 1
E 0 2
E 1 2
E 2 3
E 3 4
E 3 5
E 5 0
";

    fn request_line(db_path: &str, shards: usize) -> String {
        format!(
            r#"{{"id": 9, "query": "ans(x) :- E(x, y), E(x, z), y != z", "db_files": ["{}"], "seed": 5, "shards": {shards}}}"#,
            db_path.replace('\\', "\\\\")
        )
    }

    #[test]
    fn serve_answers_requests_from_a_file() {
        let db = write_temp("db.facts", DB);
        let requests = write_temp(
            "reqs.jsonl",
            &format!(
                "{}\n{}\n",
                request_line(db.to_str().unwrap(), 1),
                request_line(db.to_str().unwrap(), 2)
            ),
        );
        let out =
            run_serve(&args_from(["serve", "--requests", requests.to_str().unwrap()]).unwrap())
                .unwrap();
        assert_eq!(out.matches("\"results\":").count(), 2, "{out}");
        assert!(
            out.contains("served      : 2 request(s), 1 cached plan(s)"),
            "{out}"
        );
        // unsharded and 2-way sharded responses agree byte-for-byte
        // (modulo the echoed shard count)
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(
            lines[0].replace("\"shards\":1", "\"shards\":N"),
            lines[1].replace("\"shards\":2", "\"shards\":N")
        );
        std::fs::remove_file(db).ok();
        std::fs::remove_file(requests).ok();
    }

    #[test]
    fn serve_reports_errors_inline_and_keeps_going() {
        let requests = write_temp("bad.jsonl", "{\"id\": 1}\nnot json\n");
        let out = run_serve(
            &args_from(["serve", "--requests", requests.to_str().unwrap(), "--quiet"]).unwrap(),
        )
        .unwrap();
        assert_eq!(out.lines().count(), 2, "{out}");
        for line in out.lines() {
            assert!(line.contains("\"error\""), "{line}");
        }
        std::fs::remove_file(requests).ok();
    }

    #[test]
    fn zero_shards_is_a_usage_error() {
        let err = run_serve(&args_from(["serve", "--shards", "0"]).unwrap()).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
        let err = run_serve(&args_from(["serve", "--plan-cache", "0"]).unwrap()).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
        let err = run_serve(
            &args_from(["serve", "--listen", "127.0.0.1:0", "--max-requests", "0"]).unwrap(),
        )
        .unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
        for flag in ["--max-connections", "--queue-limit"] {
            let err =
                run_serve(&args_from(["serve", "--listen", "127.0.0.1:0", flag, "0"]).unwrap())
                    .unwrap_err();
            assert!(matches!(err, CliError::Usage(_)), "{flag}");
        }
        let err = run_serve(
            &args_from(["serve", "--listen", "127.0.0.1:0", "--queue-limit", "lots"]).unwrap(),
        )
        .unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
    }

    #[test]
    fn listen_mode_serves_tcp_and_honours_max_requests() {
        use std::io::{BufRead, BufReader, Write};

        let addr_file = {
            let mut p = std::env::temp_dir();
            p.push(format!("cqc-cli-serve-listen-{}.addr", std::process::id()));
            p
        };
        std::fs::remove_file(&addr_file).ok();
        let addr_file_arg = addr_file.to_str().unwrap().to_string();
        let server = std::thread::spawn(move || {
            run_serve(
                &args_from([
                    "serve",
                    "--listen",
                    "127.0.0.1:0",
                    "--max-requests",
                    "2",
                    "--addr-file",
                    &addr_file_arg,
                ])
                .unwrap(),
            )
            .unwrap()
        });
        // wait (bounded) for the readiness file, then drive the server
        // over raw NDJSON; the deadline turns a wedged server thread into
        // a test failure instead of a suite hang
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        let addr = loop {
            if let Ok(text) = std::fs::read_to_string(&addr_file) {
                if text.trim().parse::<std::net::SocketAddr>().is_ok() {
                    break text.trim().to_string();
                }
            }
            assert!(
                std::time::Instant::now() < deadline,
                "server never wrote its addr file"
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        };
        let mut stream = std::net::TcpStream::connect(&addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        for id in [1u32, 2] {
            let line = format!(
                r#"{{"id": {id}, "query": "ans(x) :- E(x, y), E(x, z), y != z", "dbs": ["universe 4\nrelation E 2\nE 0 1\nE 0 2\nE 3 1\nE 3 2\n"], "seed": 7, "method": "exact"}}"#
            );
            stream.write_all(line.as_bytes()).unwrap();
            stream.write_all(b"\n").unwrap();
            let mut response = String::new();
            reader.read_line(&mut response).unwrap();
            assert!(response.contains("\"estimate\":2,"), "{response}");
        }
        // --max-requests 2 reached: the server shuts down by itself
        let out = server.join().unwrap();
        assert!(out.contains("served      : 2 request(s)"), "{out}");
        std::fs::remove_file(&addr_file).ok();
    }

    #[test]
    fn missing_requests_file_is_an_io_error() {
        let err =
            run_serve(&args_from(["serve", "--requests", "/nonexistent/requests.jsonl"]).unwrap())
                .unwrap_err();
        assert!(matches!(err, CliError::Io(_)));
    }
}
