//! The `cqc` binary: a thin wrapper around [`cqc_cli::run`].

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let result = cqc_cli::run(&argv);
    match &result {
        Ok(output) => print!("{output}"),
        // Audit violations are findings, not usage errors: print the
        // diagnostics themselves and exit 1 (scriptable, like a linter).
        Err(cqc_cli::CliError::Audit(report)) => print!("{report}"),
        Err(err) => {
            eprintln!("error: {err}");
            eprintln!();
            eprintln!("{}", cqc_cli::USAGE);
        }
    }
    std::process::exit(cqc_cli::exit_code(&result));
}
