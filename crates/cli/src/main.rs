//! The `cqc` binary: a thin wrapper around [`cqc_cli::run`].

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match cqc_cli::run(&argv) {
        Ok(output) => print!("{output}"),
        Err(err) => {
            eprintln!("error: {err}");
            eprintln!();
            eprintln!("{}", cqc_cli::USAGE);
            std::process::exit(2);
        }
    }
}
