//! # cqc-cli — command-line interface for `cqcount`
//!
//! A small tool exposing the library's counting, sampling and classification
//! machinery on databases stored in the textual facts-file format of
//! [`cqc_data::io`]:
//!
//! ```text
//! cqc generate --family erdos-renyi --n 200 --avg-degree 3 --out social.facts
//! cqc count    --db social.facts --query "ans(x) :- E(x, y), E(x, z), y != z"
//! cqc sample   --db social.facts --query "ans(x) :- E(x, y), E(x, z), y != z" --count 5
//! cqc classify --query "ans(x1, x2) :- E(y, x1), E(y, x2), x1 != x2"
//! cqc exact    --db social.facts --query "ans(x, y) :- E(x, z), E(z, y)"
//! ```
//!
//! Every command is implemented as a library function returning its output as
//! a `String`, so the test suite can exercise the tool end to end without
//! spawning processes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod audit;
pub mod classify;
pub mod count;
pub mod generate;
pub mod loadgen;
pub mod report;
pub mod sample;
pub mod serve;
pub mod suite;

use std::fmt;

pub use args::{args_from, Args};

/// Errors surfaced by the command-line tool.
#[derive(Debug, Clone)]
pub enum CliError {
    /// The command line itself is malformed.
    Usage(String),
    /// The query text could not be parsed.
    Query(String),
    /// A facts file could not be read or written.
    Io(String),
    /// The database file is malformed.
    Facts(String),
    /// The counting algorithm rejected the instance.
    Count(String),
    /// `cqc audit` found unwaived violations; the payload is the rendered
    /// report. Mapped to exit code 1 (usage errors exit 2).
    Audit(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "usage error: {m}"),
            CliError::Query(m) => write!(f, "query error: {m}"),
            CliError::Io(m) => write!(f, "io error: {m}"),
            CliError::Facts(m) => write!(f, "facts file error: {m}"),
            CliError::Count(m) => write!(f, "counting error: {m}"),
            CliError::Audit(report) => write!(f, "audit failed:\n{report}"),
        }
    }
}

impl std::error::Error for CliError {}

/// The usage text printed by `cqc help` (and on usage errors).
pub const USAGE: &str = "\
cqc — approximately counting answers to conjunctive queries with disequalities and negations

USAGE:
    cqc <COMMAND> [OPTIONS]

COMMANDS:
    count      Estimate |Ans(ϕ, D)| (plan once with the engine, then evaluate;
               FPRAS / FPTRAS / exact dispatched per Figure 1)
    exact      Count |Ans(ϕ, D)| exactly (brute-force baseline)
    sample     Draw approximately uniform answers (Section 6)
    serve      Answer newline-delimited JSON count requests, sharding each
               request's databases across the persistent worker pool —
               responses are byte-identical for every shard count; with
               --listen, serve HTTP/1.1 + raw NDJSON over TCP
    loadgen    Drive the TCP front end with a seeded, deterministic request
               mix (closed loop); report throughput and latency percentiles
               and write BENCH_serve.json
    classify   Report the query class and its width measures (Figure 1 column)
    generate   Generate a workload database and write it as a facts file
    suite      Run the enumerated workload suites (CQ/DCQ/ECQ) end to end —
               engine phase (count/count_batch/sample) plus serve phase over
               TCP — and write the BENCH_workloads.json trajectory point;
               `suite manifest` prints the golden enumeration manifest
    report     Summarise a --trace NDJSON file offline (`report flame`:
               folded flame stacks + a per-phase wall-time table), render
               a BENCH_workloads.json table and diff it against the committed
               baseline (`report bench`), or analyse a wide-event request
               log: slowest requests, per-class latency, shed timeline
               (`report requests`)
    audit      Run the determinism & unsafety static-analysis pass over the
               workspace sources (exit 0 clean / 1 violations / 2 usage)
    help       Show this message

COMMON OPTIONS:
    --query TEXT          query in textual syntax, e.g. \"ans(x) :- E(x, y), E(x, z), y != z\"
    --query-file PATH     read the query text from a file instead
    --db PATH             database in facts-file format; `count` accepts extra
                          facts files as positional arguments and evaluates the
                          single prepared plan against each of them
    --epsilon E           relative error (default 0.25)
    --delta D             failure probability (default 0.05)
    --seed S              RNG seed (default 0xC0FFEE)
    --threads N           worker threads; 0 = auto (COUNTING_THREADS env, else
                          available parallelism). Estimates are bit-identical
                          for any thread count (deterministic seed-splitting)
    --workers N           cap the persistent worker pool width (overrides the
                          COUNTING_POOL_WORKERS env; never changes estimates)
    --method M            auto | fpras | fptras | exact   (count only, default auto)
    --repeat N            evaluate each database N times reusing the prepared
                          plan, reporting amortised timings (count only, default 1)
    --count N             number of samples                (sample only, default 10)
    --names               print element names instead of indices (sample only)
    --trace PATH          record structured trace events (spans with
                          deterministic seed-derived IDs) and write them as
                          NDJSON; never changes estimates or response bytes
                          (count, exact, sample, serve, loadgen)

SERVE OPTIONS:
    --requests PATH       newline-delimited JSON request file (default: stdin)
    --shards K            simulated shards per request (default 1); responses
                          are byte-identical for every K (seed splitting)
    --listen ADDR         serve over TCP instead (HTTP/1.1 POST /count,
                          POST /stream, GET /healthz, GET /metrics, plus the
                          read-only GET /debug/requests, /debug/flight and
                          /debug/loop introspection endpoints — plus raw
                          NDJSON sniffed on the same port); stdin is the
                          signal pipe: any line triggers graceful shutdown
                          (EOF alone is ignored so detached servers keep
                          running)
    --max-requests N      with --listen: shut down after N count requests
    --max-connections N   with --listen: admission cap on concurrent
                          connections (default 4096); connections over the
                          cap get a load-shed response (HTTP 503 / NDJSON
                          error line), never a silent close
    --queue-limit N       with --listen: bound on dispatched requests
                          queued or executing (default 256); requests over
                          the bound are shed per-request with the same
                          overload bytes while the connection stays usable
    --dispatch-workers N  with --listen: dispatch worker threads executing
                          engine endpoints (0 = auto, sized from the
                          machine)
    --addr-file PATH      with --listen: write the bound address to PATH
                          (useful with `--listen 127.0.0.1:0`)
    --request-log PATH    with --listen: append one wide NDJSON record per
                          request (id, class, queue/handle/phase times,
                          outcome) to PATH; `cqc report requests` consumes it
    --slow-ms N           with --listen: dump the flight recorder when a
                          request's handling exceeds N ms (needs --flight-dir)
    --flight-dir DIR      with --listen: write flight-recorder snapshots
                          (recent trace + wide events) into DIR on handler
                          panics, shed bursts and --slow-ms requests
    --plan-cache N        LRU capacity of the prepared-plan cache (default 64)
    --quiet               omit the trailing served/plans summary line

LOADGEN OPTIONS:
    --requests N          size of the deterministic request mix (default 100)
    --connections C       concurrent closed-loop connections (default 4)
    --protocol P          http | ndjson                      (default http)
    --shards K            add a `shards` member to every request
    --method M            add a `method` member to every request
    --epsilon E --delta D override the mix's per-request accuracy defaults
    --suite CLASS         replay the enumerated suite mix of one Figure-1
                          class (cq | dcq | ecq) instead of the curated mix
    --connect ADDR        drive a running server instead of self-hosting
    --scaling C1,C2,…     sweep the same mix at each connection count and
                          write a `serve_scaling` curve (throughput + p99
                          per point) instead of a single-point report; the
                          self-hosted server's admission caps are raised
                          above the largest point, and transcript
                          divergence across points is a hard error
    --bench-out PATH      machine-readable report (default BENCH_serve.json)
    --transcript PATH     write the id-ordered response transcript; two runs
                          with one seed are byte-identical whatever the
                          concurrency, pool width, shard count or protocol
    --obs-bench PATH      measure observability overhead: warm up, then run
                          several interleaved (off, on) repeats of the mix —
                          tracer, wide-event log and flight recorder toggled
                          together — and write the comparison (median/min
                          overhead_pct and the transcripts_identical
                          invisibility witness)
    --quiet               omit the human-readable summary

SUITE OPTIONS:
    --mode M              kick-tires | full (default kick-tires): presets for
                          queries/class, tuples/db, requests/class and (ε, δ)
    --seed S              suite sampling + request-mix seed (default 0xC0FFEE)
    --per-class N         queries sampled per class (engine phase)
    --tuples T            tuple budget per generated database
    --requests N          serve-phase requests per class
    --connections C       serve-phase closed-loop connections (default 4)
    --epsilon E --delta D engine-phase accuracy (mode-dependent defaults)
    --out PATH            trajectory document (default BENCH_workloads.json)
    --quiet               omit the rendered metrics registry

REPORT OPTIONS (cqc report flame):
    --trace PATH          the NDJSON trace file to analyse (from `--trace`)
    --folded-out PATH     also write the raw folded stacks to PATH, one
                          `path;to;span microseconds` line per stack, for
                          flamegraph tooling

REPORT OPTIONS (cqc report bench):
    --current PATH        the fresh suite run (default BENCH_workloads.json)
    --baseline PATH       the previously committed JSON to diff against;
                          throughput drops beyond 25% are flagged

REPORT OPTIONS (cqc report requests):
    --log PATH            the wide-event NDJSON file to analyse (from
                          `cqc serve --request-log`, a `/debug/requests`
                          scrape, or a flight dump)
    --top N               slowest requests to list (default 10)

AUDIT OPTIONS:
    --root DIR            workspace to audit (default: ascend from the current
                          directory to the nearest [workspace] Cargo.toml)
    --format F            text | json                        (default text)
    --out PATH            also write the JSON report (AUDIT_report.json in CI),
                          even when the run fails

GENERATE OPTIONS:
    --family F            erdos-renyi | grid | regular | ternary
    --n N                 number of vertices / universe size
    --avg-degree D        expected out-degree (erdos-renyi)
    --degree D            out-degree (regular)
    --rows R --cols C     grid dimensions
    --facts M             number of facts (ternary)
    --relation NAME       relation name (default E; ignored for ternary)
    --symmetric           also add every reversed edge
    --out PATH            output file (default: stdout)
";

/// Run the tool on the given raw arguments (excluding the program name) and
/// return the textual report it would print.
pub fn run(argv: &[String]) -> Result<String, CliError> {
    let args = Args::parse(argv)?;
    // `--workers` is a COMMON option: consume and apply it before command
    // dispatch so every command (including `classify`) accepts it.
    common::apply_workers(&args)?;
    let command = args.command.clone().unwrap_or_else(|| "help".to_string());
    // `--trace PATH` turns the tracer on for the traceable commands before
    // dispatch, so spans opened anywhere in the run are captured; the
    // drained NDJSON is written after the command returns. (`loadgen`
    // manages the tracer itself — its `--obs-bench` needs a tracing-off
    // run first.)
    let traced = matches!(command.as_str(), "count" | "exact" | "sample" | "serve")
        .then(|| args.value_of("trace").map(str::to_string))
        .flatten();
    if traced.is_some() {
        cqc_obs::trace::set_enabled(true);
    }
    let mut out = match command.as_str() {
        "count" => count::run_count(&args)?,
        "exact" => count::run_exact(&args)?,
        "sample" => sample::run_sample(&args)?,
        "serve" => serve::run_serve(&args)?,
        "loadgen" => loadgen::run_loadgen(&args)?,
        "classify" => classify::run_classify(&args)?,
        "generate" => generate::run_generate(&args)?,
        "report" => report::run_report(&args)?,
        "suite" => suite::run_suite(&args)?,
        "audit" => audit::run_audit(&args)?,
        "help" | "--help" | "-h" => USAGE.to_string(),
        other => {
            return Err(CliError::Usage(format!(
                "unknown command `{other}`; run `cqc help`"
            )))
        }
    };
    if let Some(path) = traced {
        let events = common::write_trace(&path)?;
        if !args.switch("quiet") {
            out.push_str(&format!(
                "trace       : wrote {events} event(s) to {path}\n"
            ));
        }
    }
    args.reject_unknown()?;
    Ok(out)
}

/// The process exit code for a [`run`] result: 0 on success, 1 when the
/// audit found violations, 2 for every other error (usage, io, …).
pub fn exit_code<T>(result: &Result<T, CliError>) -> i32 {
    match result {
        Ok(_) => 0,
        Err(CliError::Audit(_)) => 1,
        Err(_) => 2,
    }
}

/// Shared helpers used by the individual commands.
pub(crate) mod common {
    use super::CliError;
    use crate::Args;
    use cqc_core::ApproxConfig;
    use cqc_data::{parse_facts, Structure};
    use cqc_query::{parse_query, Query};

    /// Load the query from `--query` or `--query-file`.
    pub fn load_query(args: &Args) -> Result<Query, CliError> {
        let text = if let Some(q) = args.value_of("query") {
            q.to_string()
        } else if let Some(path) = args.value_of("query-file") {
            std::fs::read_to_string(path)
                .map_err(|e| CliError::Io(format!("cannot read `{path}`: {e}")))?
        } else {
            return Err(CliError::Usage(
                "provide the query with `--query` or `--query-file`".into(),
            ));
        };
        parse_query(text.trim()).map_err(|e| CliError::Query(e.to_string()))
    }

    /// Load a facts file from disk.
    pub fn load_facts_file(path: &str) -> Result<Structure, CliError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CliError::Io(format!("cannot read `{path}`: {e}")))?;
        parse_facts(&text).map_err(|e| CliError::Facts(e.to_string()))
    }

    /// Load the database from `--db`.
    pub fn load_database(args: &Args) -> Result<Structure, CliError> {
        load_facts_file(args.require("db")?)
    }

    /// Disable the tracer, drain every thread's span buffer, and write the
    /// events as NDJSON to `path`. Returns the number of events written.
    pub fn write_trace(path: &str) -> Result<u64, CliError> {
        cqc_obs::trace::set_enabled(false);
        let trace = cqc_obs::trace::drain();
        let events = trace.events.len() as u64;
        std::fs::write(path, trace.to_ndjson())
            .map_err(|e| CliError::Io(format!("cannot write `{path}`: {e}")))?;
        Ok(events)
    }

    /// Apply `--workers N`: cap the persistent worker pool width for the
    /// rest of the process (overrides `COUNTING_POOL_WORKERS`). Like the
    /// thread count, the cap never changes estimates — only wall times.
    pub fn apply_workers(args: &Args) -> Result<(), CliError> {
        if let Some(raw) = args.value_of("workers") {
            let workers: usize = raw.parse().map_err(|e| {
                CliError::Usage(format!("invalid value `{raw}` for `--workers`: {e}"))
            })?;
            if workers == 0 {
                return Err(CliError::Usage("`--workers` must be at least 1".into()));
            }
            cqc_runtime::pool::set_worker_cap(workers);
        }
        Ok(())
    }

    /// Build the approximation configuration from the common options.
    pub fn approx_config(args: &Args) -> Result<ApproxConfig, CliError> {
        let epsilon: f64 = args.get_or("epsilon", 0.25)?;
        let delta: f64 = args.get_or("delta", 0.05)?;
        if !(0.0 < epsilon && epsilon < 1.0) {
            return Err(CliError::Usage("`--epsilon` must lie in (0, 1)".into()));
        }
        if !(0.0 < delta && delta < 1.0) {
            return Err(CliError::Usage("`--delta` must lie in (0, 1)".into()));
        }
        let seed: u64 = args.get_or("seed", 0xC0FFEE)?;
        // 0 = auto (COUNTING_THREADS env, else available parallelism); the
        // thread count never changes estimates, only wall times.
        let threads: usize = args.get_or("threads", 0)?;
        let mut cfg = ApproxConfig::new(epsilon, delta).with_seed(seed);
        cfg.threads = threads;
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn help_is_returned_for_no_command_and_help() {
        let out = run(&[]).unwrap();
        assert!(out.contains("USAGE"));
        let out = run(&["help".to_string()]).unwrap();
        assert!(out.contains("classify"));
    }

    #[test]
    fn unknown_command_is_rejected() {
        let err = run(&["frobnicate".to_string()]).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
        assert!(err.to_string().contains("frobnicate"));
    }

    #[test]
    fn error_display_variants() {
        assert!(CliError::Query("x".into()).to_string().contains("query"));
        assert!(CliError::Io("x".into()).to_string().contains("io"));
        assert!(CliError::Facts("x".into()).to_string().contains("facts"));
        assert!(CliError::Count("x".into()).to_string().contains("counting"));
    }
}
