//! The `suite` command: run the enumerated workload suites end to end and
//! emit the committed perf-trajectory document `BENCH_workloads.json`.
//!
//! `cqc suite` drives, per Figure-1 class (CQ / DCQ / ECQ):
//!
//! 1. an **engine phase** — a seeded sample of the class's enumeration is
//!    prepared once per query and exercised through
//!    `PreparedQuery::{count, count_batch, sample}` against seeded
//!    databases scaled by `--tuples`, with per-operation latencies
//!    recorded into the unified obs registry; and
//! 2. a **serve phase** — the class's enumerated request mix is replayed
//!    through the real TCP serving stack by the closed-loop load
//!    generator (`cqc_net::loadgen` with `suite = Some(class)`).
//!
//! `cqc suite manifest` prints the byte-stable enumeration manifest that
//! `tests/golden/workload_suites.txt` pins (and CI diffs on every push).
//! Everything is a pure function of `--seed`, so two runs measure the same
//! work — only the wall-clock numbers move, which is what makes the
//! committed JSON a PR-over-PR trajectory point.

use crate::{Args, CliError};
use cqc_core::Engine;
use cqc_net::loadgen::{run_against, transcript_fingerprint, LoadgenOptions, Protocol};
use cqc_net::{NetConfig, RunningServer};
use cqc_obs::metrics::{Registry, LATENCY_BUCKET_BOUNDS_NANOS};
use cqc_obs::Stopwatch;
use cqc_runtime::split_seed;
use cqc_serve::json::Value;
use cqc_workloads::{class_name, enumerate_class, manifest, suite, suite_database, ALL_CLASSES};
use std::fmt::Write as _;

/// The pinned manifest defaults (golden-tested; change them and the
/// golden file together).
pub const MANIFEST_SEED: u64 = 0xC0FFEE;
/// Queries sampled per class in the pinned manifest.
pub const MANIFEST_PER_CLASS: usize = 8;

/// Run `cqc suite`.
pub fn run_suite(args: &Args) -> Result<String, CliError> {
    match args.positional() {
        [] => run_bench(args),
        [kind] if kind == "manifest" => run_manifest(args),
        [other, ..] => Err(CliError::Usage(format!(
            "unknown suite subcommand `{other}` (expected nothing or `manifest`)"
        ))),
    }
}

/// `cqc suite manifest`: print the byte-stable enumeration manifest.
fn run_manifest(args: &Args) -> Result<String, CliError> {
    let seed: u64 = args.get_or("seed", MANIFEST_SEED)?;
    let per_class: usize = args.get_or("per-class", MANIFEST_PER_CLASS)?;
    Ok(manifest(seed, per_class))
}

/// Per-phase measurements of one class.
struct PhaseStats {
    operations: usize,
    wall_seconds: f64,
    throughput: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
}

/// Nearest-rank percentile over raw nanosecond samples, in milliseconds
/// (the same convention as the load generator).
fn percentile_ms(sorted_nanos: &[u64], q: f64) -> f64 {
    if sorted_nanos.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted_nanos.len() as f64).ceil() as usize).clamp(1, sorted_nanos.len());
    sorted_nanos[rank - 1] as f64 / 1e6
}

fn latency_obj(p50: f64, p95: f64, p99: f64) -> Value {
    Value::Obj(vec![
        ("p50".to_string(), Value::Num(p50)),
        ("p95".to_string(), Value::Num(p95)),
        ("p99".to_string(), Value::Num(p99)),
    ])
}

/// `cqc suite [--mode kick-tires|full]`: the end-to-end bench run.
fn run_bench(args: &Args) -> Result<String, CliError> {
    let mode = args.value_of("mode").unwrap_or("kick-tires").to_string();
    // mode presets: kick-tires finishes in minutes on a laptop (and in
    // CI); full is the artifact shape
    let (d_per_class, d_tuples, d_requests, d_epsilon, d_delta) = match mode.as_str() {
        "kick-tires" => (8usize, 24usize, 45usize, 0.5f64, 0.25f64),
        "full" => (24, 60, 160, 0.35, 0.1),
        other => {
            return Err(CliError::Usage(format!(
                "unknown mode `{other}` (expected kick-tires | full)"
            )))
        }
    };
    let seed: u64 = args.get_or("seed", MANIFEST_SEED)?;
    let per_class: usize = args.get_or("per-class", d_per_class)?;
    let tuples: usize = args.get_or("tuples", d_tuples)?;
    let requests: usize = args.get_or("requests", d_requests)?;
    let connections: usize = args.get_or("connections", 4)?;
    let epsilon: f64 = args.get_or("epsilon", d_epsilon)?;
    let delta: f64 = args.get_or("delta", d_delta)?;
    if !(0.0 < epsilon && epsilon < 1.0 && 0.0 < delta && delta < 1.0) {
        return Err(CliError::Usage(
            "`--epsilon` and `--delta` must lie in (0, 1)".into(),
        ));
    }
    if per_class == 0 || requests == 0 || tuples == 0 {
        return Err(CliError::Usage(
            "`--per-class`, `--requests` and `--tuples` must be at least 1".into(),
        ));
    }
    let out_path = args.get_or("out", "BENCH_workloads.json".to_string())?;

    // The unified metrics registry: per-class engine-operation and
    // serve-request latency histograms, rendered into the human report.
    let registry = Registry::new();
    let engine = Engine::builder()
        .accuracy(epsilon, delta)
        .seed(seed)
        .build()
        .map_err(|e| CliError::Count(e.to_string()))?;

    // one server hosts every class's serve phase (warm pool, shared cache
    // — the production shape)
    let server = RunningServer::bind("127.0.0.1:0", NetConfig::default())
        .map_err(|e| CliError::Io(format!("cannot bind loopback server: {e}")))?;
    let addr = server.addr();

    let mut class_docs = Vec::new();
    let mut text = String::new();
    writeln!(
        text,
        "suite       : mode {mode}, seed {seed}, {per_class} query(s)/class, \
         {tuples} tuple(s)/db, {requests} request(s)/class, ε={epsilon} δ={delta}"
    )
    .unwrap();

    for (ci, class) in ALL_CLASSES.into_iter().enumerate() {
        let name = class_name(class);
        let lower = name.to_ascii_lowercase();
        let engine_hist = registry.histogram(
            &format!("suite_{lower}_engine_op_seconds"),
            LATENCY_BUCKET_BOUNDS_NANOS,
        );
        let op_counter = registry.counter(
            &format!("suite_{lower}_engine_ops_total"),
            "engine operations driven by cqc suite",
        );

        // ---- engine phase: prepare once, then count / count_batch / sample
        let sample_set = suite(class, seed, per_class);
        let mut nanos: Vec<u64> = Vec::new();
        let class_watch = Stopwatch::start();
        for (qi, sq) in sample_set.queries.iter().enumerate() {
            let prepared = engine
                .prepare(&sq.query)
                .map_err(|e| CliError::Count(format!("prepare {}: {e}", sq.name)))?;
            let db_stream = split_seed(split_seed(seed, 100 + ci as u64), qi as u64);
            let dbs = vec![
                suite_database(split_seed(db_stream, 0), tuples),
                suite_database(split_seed(db_stream, 1), tuples),
            ];
            let fail = |op: &str, e: cqc_core::CoreError| {
                CliError::Count(format!("{op} {}: {e}", sq.name))
            };
            let op = |nanos: &mut Vec<u64>,
                      run: &mut dyn FnMut() -> Result<(), CliError>|
             -> Result<(), CliError> {
                let watch = Stopwatch::start();
                run()?;
                let elapsed = watch.elapsed();
                engine_hist.record(elapsed);
                op_counter.inc();
                nanos.push(elapsed.as_nanos().min(u64::MAX as u128) as u64);
                Ok(())
            };
            op(&mut nanos, &mut || {
                prepared
                    .count(&dbs[0])
                    .map(drop)
                    .map_err(|e| fail("count", e))
            })?;
            op(&mut nanos, &mut || {
                prepared
                    .count_batch(&dbs)
                    .map(drop)
                    .map_err(|e| fail("count_batch", e))
            })?;
            op(&mut nanos, &mut || {
                prepared
                    .sample(&dbs[0], 2)
                    .map(drop)
                    .map_err(|e| fail("sample", e))
            })?;
        }
        let engine_wall = class_watch.elapsed().as_secs_f64();
        nanos.sort_unstable();
        let engine_stats = PhaseStats {
            operations: nanos.len(),
            wall_seconds: engine_wall,
            throughput: nanos.len() as f64 / engine_wall.max(1e-9),
            p50_ms: percentile_ms(&nanos, 0.50),
            p95_ms: percentile_ms(&nanos, 0.95),
            p99_ms: percentile_ms(&nanos, 0.99),
        };

        // ---- serve phase: the enumerated request mix over real TCP
        let options = LoadgenOptions {
            requests,
            connections,
            seed,
            shards: None,
            method: None,
            accuracy: None,
            protocol: Protocol::Http,
            suite: Some(class),
        };
        let report = run_against(addr, &options)
            .map_err(|e| CliError::Io(format!("suite loadgen against {addr}: {e}")))?;
        let serve_stats = PhaseStats {
            operations: requests,
            wall_seconds: report.wall.as_secs_f64(),
            throughput: report.throughput_rps,
            p50_ms: report.p50_ms,
            p95_ms: report.p95_ms,
            p99_ms: report.p99_ms,
        };
        if report.errors > 0 {
            return Err(CliError::Count(format!(
                "suite {name}: {} serve request(s) answered with an error",
                report.errors
            )));
        }

        writeln!(
            text,
            "class {name:<4}  : enumerated {}, engine {} op(s) at {:.1} op/s \
             (p50={:.2} p95={:.2} p99={:.2} ms), serve {requests} req(s) at {:.1} req/s \
             (p50={:.2} p95={:.2} p99={:.2} ms)",
            enumerate_class(class).len(),
            engine_stats.operations,
            engine_stats.throughput,
            engine_stats.p50_ms,
            engine_stats.p95_ms,
            engine_stats.p99_ms,
            serve_stats.throughput,
            serve_stats.p50_ms,
            serve_stats.p95_ms,
            serve_stats.p99_ms,
        )
        .unwrap();

        let phase_obj = |s: &PhaseStats, key: &str| {
            (
                key.to_string(),
                Value::Obj(vec![
                    ("operations".to_string(), Value::Num(s.operations as f64)),
                    ("wall_seconds".to_string(), Value::Num(s.wall_seconds)),
                    ("throughput".to_string(), Value::Num(s.throughput)),
                    (
                        "latency_ms".to_string(),
                        latency_obj(s.p50_ms, s.p95_ms, s.p99_ms),
                    ),
                ]),
            )
        };
        class_docs.push(Value::Obj(vec![
            ("class".to_string(), Value::Str(name.to_string())),
            (
                "enumerated".to_string(),
                Value::Num(enumerate_class(class).len() as f64),
            ),
            (
                "sampled".to_string(),
                Value::Num(sample_set.queries.len() as f64),
            ),
            phase_obj(&engine_stats, "engine"),
            phase_obj(&serve_stats, "serve"),
            (
                "transcript_fnv1a".to_string(),
                Value::Str(format!(
                    "{:016x}",
                    transcript_fingerprint(&report.transcript)
                )),
            ),
        ]));
    }
    let served = server.shutdown();

    let doc = Value::Obj(vec![
        (
            "bench".to_string(),
            Value::Str("workload_suites".to_string()),
        ),
        ("mode".to_string(), Value::Str(mode.clone())),
        ("seed".to_string(), Value::Str(seed.to_string())),
        ("per_class".to_string(), Value::Num(per_class as f64)),
        ("tuples".to_string(), Value::Num(tuples as f64)),
        (
            "requests_per_class".to_string(),
            Value::Num(requests as f64),
        ),
        ("epsilon".to_string(), Value::Num(epsilon)),
        ("delta".to_string(), Value::Num(delta)),
        ("classes".to_string(), Value::Arr(class_docs)),
    ]);
    std::fs::write(&out_path, format!("{}\n", doc.render()))
        .map_err(|e| CliError::Io(format!("cannot write `{out_path}`: {e}")))?;

    writeln!(text, "server      : served {served} request(s) over TCP").unwrap();
    writeln!(text, "bench       : wrote {out_path}").unwrap();
    if !args.switch("quiet") {
        writeln!(text, "\nmetrics:\n{}", registry.render()).unwrap();
    }
    Ok(text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args_from;
    use std::path::PathBuf;

    fn temp(name: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("cqc-cli-suite-{}-{name}", std::process::id()));
        path
    }

    #[test]
    fn manifest_subcommand_matches_the_library() {
        let out = run_suite(&args_from(["suite", "manifest"]).unwrap()).unwrap();
        assert_eq!(out, manifest(MANIFEST_SEED, MANIFEST_PER_CLASS));
        let small =
            run_suite(&args_from(["suite", "manifest", "--per-class", "2"]).unwrap()).unwrap();
        assert!(small.contains("2 per class"), "{small}");
    }

    #[test]
    fn tiny_bench_run_writes_a_parseable_trajectory_point() {
        let out_path = temp("bench.json");
        let out = run_suite(
            &args_from([
                "suite",
                "--per-class",
                "2",
                "--tuples",
                "12",
                "--requests",
                "3",
                "--connections",
                "2",
                "--epsilon",
                "0.6",
                "--delta",
                "0.3",
                "--out",
                out_path.to_str().unwrap(),
            ])
            .unwrap(),
        )
        .unwrap();
        assert!(out.contains("class CQ"), "{out}");
        assert!(out.contains("class ECQ"), "{out}");
        // the obs registry rendered per-class histograms
        assert!(out.contains("suite_cq_engine_op_seconds_count"), "{out}");
        let doc = std::fs::read_to_string(&out_path).unwrap();
        let v = cqc_serve::json::parse(doc.trim()).expect("bench json parses");
        assert_eq!(
            v.get("bench").and_then(|b| b.as_str()),
            Some("workload_suites")
        );
        let classes = match v.get("classes") {
            Some(Value::Arr(items)) => items.clone(),
            other => panic!("classes missing: {other:?}"),
        };
        assert_eq!(classes.len(), 3);
        for class in &classes {
            assert!(class
                .get("engine")
                .and_then(|e| e.get("throughput"))
                .is_some());
            assert!(class
                .get("serve")
                .and_then(|s| s.get("latency_ms"))
                .and_then(|l| l.get("p99"))
                .is_some());
        }
        std::fs::remove_file(&out_path).ok();
    }

    #[test]
    fn bad_suite_invocations_are_usage_errors() {
        for bad in [
            vec!["suite", "icicle"],
            vec!["suite", "--mode", "warp"],
            vec!["suite", "--per-class", "0"],
            vec!["suite", "--epsilon", "1.5"],
        ] {
            let err = run_suite(&args_from(bad.clone()).unwrap()).unwrap_err();
            assert!(matches!(err, CliError::Usage(_)), "{bad:?} -> {err}");
        }
    }
}
