//! The `report` command: offline analysis of `--trace` NDJSON files and
//! of `BENCH_workloads.json` trajectory points.
//!
//! `cqc report flame --trace FILE` parses the event stream a traced run
//! wrote, reassembles the span forest (`cqc_obs::trace::build_forest`),
//! and renders a per-phase wall-time table plus flamegraph-compatible
//! folded stacks (self-time in microseconds). `--folded-out PATH` writes
//! the raw folded lines for external flamegraph tooling.
//!
//! `cqc report bench --current FILE [--baseline FILE]` renders the
//! per-class throughput/latency table of a `cqc suite` run and, given the
//! previously committed JSON as a baseline, reports the throughput delta
//! per class and phase, flagging drops beyond the regression threshold.
//!
//! `cqc report requests --log FILE` consumes a wide-event request log
//! (`cqc serve --request-log`, one NDJSON record per request) and renders
//! the top-N slowest requests, a per-class latency breakdown, and the
//! load-shed timeline. Flight-recorder dump files parse too — their trace
//! lines are skipped, their wide lines analysed.

use crate::{Args, CliError};
use cqc_obs::trace::{build_forest, fold_stacks, phase_totals, Event, EventKind};
use cqc_serve::json::{parse, Value};

/// Run `cqc report`.
pub fn run_report(args: &Args) -> Result<String, CliError> {
    match args.positional() {
        [kind] if kind == "flame" => run_flame(args),
        [kind] if kind == "bench" => run_bench_report(args),
        [kind] if kind == "requests" => run_requests_report(args),
        [other, ..] => Err(CliError::Usage(format!(
            "unknown report `{other}` (expected `flame`, `bench` or `requests`); run `cqc help`"
        ))),
        [] => Err(CliError::Usage(
            "`report` expects a report kind (`cqc report flame --trace FILE`, \
             `cqc report bench --current FILE` or `cqc report requests --log FILE`)"
                .into(),
        )),
    }
}

/// Throughput drops beyond this fraction of the baseline are flagged.
const REGRESSION_THRESHOLD: f64 = 0.25;

/// One `(class, phase, throughput, p50, p95, p99)` measurement pulled out
/// of a suite bench document.
type PhaseRow = (String, String, f64, f64, f64, f64);

fn phase_rows(doc: &Value) -> Result<Vec<PhaseRow>, CliError> {
    let classes = match doc.get("classes") {
        Some(Value::Arr(items)) => items,
        _ => {
            return Err(CliError::Facts(
                "bench document has no `classes` array (is this BENCH_workloads.json?)".into(),
            ))
        }
    };
    let mut rows = Vec::new();
    for class in classes {
        let name = class
            .get("class")
            .and_then(Value::as_str)
            .unwrap_or("?")
            .to_string();
        for phase in ["engine", "serve"] {
            let p = match class.get(phase) {
                Some(p) => p,
                None => continue,
            };
            let num = |v: Option<&Value>| v.and_then(Value::as_f64).unwrap_or(0.0);
            let lat = p.get("latency_ms");
            rows.push((
                name.clone(),
                phase.to_string(),
                num(p.get("throughput")),
                num(lat.and_then(|l| l.get("p50"))),
                num(lat.and_then(|l| l.get("p95"))),
                num(lat.and_then(|l| l.get("p99"))),
            ));
        }
    }
    Ok(rows)
}

/// Read and parse one bench JSON document.
fn load_bench(path: &str) -> Result<Value, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Io(format!("cannot read `{path}`: {e}")))?;
    parse(text.trim()).map_err(|e| CliError::Facts(format!("`{path}`: {e}")))
}

/// `cqc report bench`: render the suite table, diffing against a baseline.
fn run_bench_report(args: &Args) -> Result<String, CliError> {
    let current_path = args.get_or("current", "BENCH_workloads.json".to_string())?;
    let current = load_bench(&current_path)?;
    let baseline = match args.value_of("baseline") {
        Some(path) => Some(load_bench(path)?),
        None => None,
    };
    let rows = phase_rows(&current)?;
    let base_rows = baseline.as_ref().map(phase_rows).transpose()?;

    let mut out = String::new();
    out.push_str(&format!(
        "suite bench : {} (mode {}, seed {})\n",
        current_path,
        current.get("mode").and_then(Value::as_str).unwrap_or("?"),
        current.get("seed").and_then(Value::as_str).unwrap_or("?"),
    ));
    match args.value_of("baseline") {
        Some(path) => out.push_str(&format!("baseline    : {path}\n")),
        None => out.push_str("baseline    : none\n"),
    }
    out.push_str("\nclass  phase    thrpt/s   p50_ms   p95_ms   p99_ms   vs baseline\n");
    let mut regressions = 0usize;
    for (class, phase, thrpt, p50, p95, p99) in &rows {
        let delta = base_rows.as_ref().and_then(|base| {
            base.iter().find(|(c, p, ..)| c == class && p == phase).map(
                |&(_, _, base_thrpt, ..)| {
                    if base_thrpt > 0.0 {
                        (thrpt - base_thrpt) / base_thrpt
                    } else {
                        0.0
                    }
                },
            )
        });
        let delta_text = match delta {
            None => "-".to_string(),
            Some(d) if d < -REGRESSION_THRESHOLD => {
                regressions += 1;
                format!("{:+.1}% ← REGRESSION", d * 100.0)
            }
            Some(d) => format!("{:+.1}%", d * 100.0),
        };
        out.push_str(&format!(
            "{class:<6} {phase:<8} {thrpt:>8.1} {p50:>8.2} {p95:>8.2} {p99:>8.2}   {delta_text}\n"
        ));
    }
    out.push('\n');
    if base_rows.is_some() {
        out.push_str(&format!(
            "regressions : {} phase(s) more than {:.0}% below baseline throughput\n",
            regressions,
            REGRESSION_THRESHOLD * 100.0
        ));
        out.push_str(
            "note        : wall-clock numbers are machine-dependent; treat flags as\n\
             \u{20}             prompts for a local rerun, not CI failures\n",
        );
    }
    Ok(out)
}

/// One parsed wide-event record from a request log (the inverse of
/// `cqc_obs::WideEvent::to_json_line`, reduced to the members the report
/// consumes).
struct WideRow {
    seq: u64,
    t_ns: u64,
    protocol: String,
    endpoint: String,
    class: String,
    outcome: String,
    status: u64,
    queue_ns: u64,
    handle_ns: u64,
    prepare_ns: u64,
    evaluate_ns: u64,
    bytes: u64,
    trace: String,
}

/// Parse a request-log (or `/debug/requests` tail, or flight-dump) NDJSON
/// file. Wide records are collected; `dropped` markers are summed; flight
/// headers and trace events (present in dump files) are skipped.
fn parse_request_log(text: &str) -> Result<(Vec<WideRow>, u64), CliError> {
    let bad =
        |line: usize, m: String| CliError::Facts(format!("request-log line {}: {m}", line + 1));
    let mut rows = Vec::new();
    let mut dropped = 0u64;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = parse(line).map_err(|e| bad(i, e.to_string()))?;
        match v.get("type").and_then(Value::as_str) {
            Some("wide") => {}
            Some("dropped") => {
                dropped += v.get("count").and_then(Value::as_u64).unwrap_or(0);
                continue;
            }
            // flight headers and trace events inside dump files
            Some(_) => continue,
            None => return Err(bad(i, "missing `type`".into())),
        }
        let s = |key: &str| v.get(key).and_then(Value::as_str).unwrap_or("").to_string();
        let n = |key: &str| v.get(key).and_then(Value::as_u64).unwrap_or(0);
        rows.push(WideRow {
            seq: n("seq"),
            t_ns: n("t_ns"),
            protocol: s("protocol"),
            endpoint: s("endpoint"),
            class: s("class"),
            outcome: s("outcome"),
            status: n("status"),
            queue_ns: n("queue_ns"),
            handle_ns: n("handle_ns"),
            prepare_ns: n("prepare_ns"),
            evaluate_ns: n("evaluate_ns"),
            bytes: n("bytes"),
            trace: s("trace"),
        });
    }
    Ok((rows, dropped))
}

/// Nearest-rank percentile of an ascending nanosecond slice, in ms.
fn pct_ms(sorted_ns: &[u64], q: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * q).round() as usize;
    sorted_ns[idx.min(sorted_ns.len() - 1)] as f64 / 1e6
}

/// `cqc report requests`: top-N slowest requests, per-class latency
/// breakdown, shed timeline — the offline consumer of a wide-event log.
fn run_requests_report(args: &Args) -> Result<String, CliError> {
    let path = args.require("log")?;
    let top: usize = args.get_or("top", 10)?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Io(format!("cannot read `{path}`: {e}")))?;
    let (rows, dropped) = parse_request_log(&text)?;
    if rows.is_empty() {
        return Err(CliError::Facts(format!(
            "`{path}` holds no wide events (is this a `--request-log` file?)"
        )));
    }

    let mut out = String::new();
    let count_of = |o: &str| rows.iter().filter(|r| r.outcome == o).count();
    out.push_str(&format!(
        "requests    : {} wide event(s) (ok {}, error {}, shed {}, panic {})",
        rows.len(),
        count_of("ok"),
        count_of("error"),
        count_of("shed"),
        count_of("panic"),
    ));
    if dropped > 0 {
        out.push_str(&format!(
            " — {dropped} older event(s) dropped from the tail"
        ));
    }
    out.push('\n');

    // Top-N slowest by what the client felt: queue wait + handling.
    let mut order: Vec<usize> = (0..rows.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(rows[i].queue_ns + rows[i].handle_ns));
    out.push_str(&format!(
        "\nslowest {} (queue + handle):\n",
        top.min(rows.len())
    ));
    out.push_str(
        "seq      proto   endpoint  outcome  status  queue_ms  handle_ms  prep_ms  eval_ms    bytes  class/trace\n",
    );
    for &i in order.iter().take(top) {
        let r = &rows[i];
        let tag = if r.trace.is_empty() {
            r.class.clone()
        } else {
            format!("{} [{}]", r.class, r.trace)
        };
        out.push_str(&format!(
            "{:<8} {:<7} {:<9} {:<8} {:>6} {:>9.3} {:>10.3} {:>8.3} {:>8.3} {:>8}  {}\n",
            r.seq,
            r.protocol,
            r.endpoint,
            r.outcome,
            r.status,
            r.queue_ns as f64 / 1e6,
            r.handle_ns as f64 / 1e6,
            r.prepare_ns as f64 / 1e6,
            r.evaluate_ns as f64 / 1e6,
            r.bytes,
            tag,
        ));
    }

    // Per-class handling-latency breakdown (classes in first-seen order).
    let mut classes: Vec<(String, Vec<u64>)> = Vec::new();
    for r in &rows {
        let name = if r.class.is_empty() { "-" } else { &r.class };
        match classes.iter_mut().find(|(c, _)| c == name) {
            Some((_, v)) => v.push(r.handle_ns),
            None => classes.push((name.to_string(), vec![r.handle_ns])),
        }
    }
    out.push_str("\nper-class handle latency (ms):\n");
    out.push_str("class                     count      p50      p95      p99\n");
    for (name, mut ns) in classes {
        ns.sort_unstable();
        out.push_str(&format!(
            "{name:<25} {:>5} {:>8.3} {:>8.3} {:>8.3}\n",
            ns.len(),
            pct_ms(&ns, 0.50),
            pct_ms(&ns, 0.95),
            pct_ms(&ns, 0.99),
        ));
    }

    // Shed timeline: seconds since the first event in the log.
    let t0 = rows.iter().map(|r| r.t_ns).min().unwrap_or(0);
    let mut shed_buckets: Vec<(u64, u64)> = Vec::new(); // (second, count)
    for r in rows.iter().filter(|r| r.outcome == "shed") {
        let sec = r.t_ns.saturating_sub(t0) / 1_000_000_000;
        match shed_buckets.iter_mut().find(|(s, _)| *s == sec) {
            Some((_, n)) => *n += 1,
            None => shed_buckets.push((sec, 1)),
        }
    }
    shed_buckets.sort_unstable();
    if shed_buckets.is_empty() {
        out.push_str("\nshed        : none\n");
    } else {
        out.push_str("\nshed timeline (seconds since first event):\n");
        for (sec, n) in shed_buckets {
            out.push_str(&format!("  t+{sec:<4}s : {n} shed\n"));
        }
    }
    Ok(out)
}

/// Parse one NDJSON trace file back into events (the inverse of
/// `Trace::to_ndjson`). Returns the events plus the dropped-event count
/// from the trailing marker line, if any.
fn parse_trace(text: &str) -> Result<(Vec<Event>, u64), CliError> {
    let bad = |line: usize, m: String| CliError::Facts(format!("trace line {}: {m}", line + 1));
    let mut events = Vec::new();
    let mut dropped = 0u64;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = parse(line).map_err(|e| bad(i, e.to_string()))?;
        let kind_name = v
            .get("type")
            .and_then(Value::as_str)
            .ok_or_else(|| bad(i, "missing `type`".into()))?;
        if kind_name == "dropped" {
            dropped += v.get("count").and_then(Value::as_u64).unwrap_or(0);
            continue;
        }
        let name = v
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| bad(i, "missing `name`".into()))?
            .to_string();
        let hex_id = |key: &str| -> Result<u64, CliError> {
            let raw = v
                .get(key)
                .and_then(Value::as_str)
                .ok_or_else(|| bad(i, format!("missing hex member `{key}`")))?;
            u64::from_str_radix(raw, 16).map_err(|e| bad(i, format!("bad `{key}`: {e}")))
        };
        let kind = match kind_name {
            "enter" => EventKind::Enter {
                name,
                id: hex_id("id")?,
                parent: hex_id("parent")?,
            },
            "exit" => EventKind::Exit {
                name,
                id: hex_id("id")?,
            },
            "instant" => EventKind::Instant {
                name,
                detail: v
                    .get("detail")
                    .and_then(Value::as_str)
                    .unwrap_or_default()
                    .to_string(),
            },
            other => return Err(bad(i, format!("unknown event type `{other}`"))),
        };
        events.push(Event {
            thread: v.get("thread").and_then(Value::as_u64).unwrap_or(0) as u32,
            seq: v.get("seq").and_then(Value::as_u64).unwrap_or(0),
            t_ns: v.get("t_ns").and_then(Value::as_u64).unwrap_or(0),
            kind,
        });
    }
    events.sort_by_key(|e| (e.thread, e.seq));
    Ok((events, dropped))
}

fn run_flame(args: &Args) -> Result<String, CliError> {
    let path = args.require("trace")?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Io(format!("cannot read `{path}`: {e}")))?;
    let (events, dropped) = parse_trace(&text)?;
    let forest = build_forest(&events);
    let phases = phase_totals(&forest);
    let folded = fold_stacks(&forest);
    let instants = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Instant { .. }))
        .count();

    let mut out = String::new();
    out.push_str(&format!(
        "trace       : {} event(s), {} span(s), {instants} instant(s)",
        events.len(),
        forest.nodes.len(),
    ));
    if dropped > 0 {
        out.push_str(&format!(
            " — WARNING: {dropped} event(s) dropped (trace incomplete)"
        ));
    }
    out.push('\n');

    out.push_str("\nphase         spans   total_ms\n");
    for (name, count, total_ns) in &phases {
        out.push_str(&format!(
            "{name:<13} {count:>5}   {:.3}\n",
            *total_ns as f64 / 1e6
        ));
    }

    out.push_str("\nfolded stacks (self-time µs):\n");
    let mut folded_text = String::new();
    for (stack, self_us) in &folded {
        folded_text.push_str(&format!("{stack} {self_us}\n"));
    }
    out.push_str(&folded_text);

    if let Some(folded_path) = args.value_of("folded-out") {
        std::fs::write(folded_path, &folded_text)
            .map_err(|e| CliError::Io(format!("cannot write `{folded_path}`: {e}")))?;
        out.push_str(&format!("\nfolded      : wrote {folded_path}\n"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args_from;
    use cqc_obs::trace::Trace;
    use std::path::PathBuf;

    fn temp(name: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("cqc-cli-report-{}-{name}", std::process::id()));
        path
    }

    /// A hand-built trace: request(10µs) > work_item(4µs), one instant.
    fn sample_trace() -> Trace {
        let ev = |seq: u64, t_ns: u64, kind: EventKind| Event {
            thread: 0,
            seq,
            t_ns,
            kind,
        };
        Trace {
            events: vec![
                ev(
                    0,
                    0,
                    EventKind::Enter {
                        name: "request".into(),
                        id: 0xAB,
                        parent: 0,
                    },
                ),
                ev(
                    1,
                    1_000,
                    EventKind::Instant {
                        name: "traceparent".into(),
                        detail: "00-abc".into(),
                    },
                ),
                ev(
                    2,
                    2_000,
                    EventKind::Enter {
                        name: "work_item".into(),
                        id: 0xCD,
                        parent: 0xAB,
                    },
                ),
                ev(
                    3,
                    6_000,
                    EventKind::Exit {
                        name: "work_item".into(),
                        id: 0xCD,
                    },
                ),
                ev(
                    4,
                    10_000,
                    EventKind::Exit {
                        name: "request".into(),
                        id: 0xAB,
                    },
                ),
            ],
            dropped: 0,
        }
    }

    #[test]
    fn ndjson_round_trips_through_the_parser() {
        let trace = sample_trace();
        let (events, dropped) = parse_trace(&trace.to_ndjson()).unwrap();
        assert_eq!(events, trace.events);
        assert_eq!(dropped, 0);
        // a dropped marker survives the round trip as a count
        let truncated = Trace {
            events: trace.events.clone(),
            dropped: 3,
        };
        let (_, dropped) = parse_trace(&truncated.to_ndjson()).unwrap();
        assert_eq!(dropped, 3);
    }

    #[test]
    fn flame_report_renders_phases_and_folded_stacks() {
        let path = temp("flame.ndjson");
        let folded = temp("flame.folded");
        std::fs::write(&path, sample_trace().to_ndjson()).unwrap();
        let out = run_report(
            &args_from([
                "report",
                "flame",
                "--trace",
                path.to_str().unwrap(),
                "--folded-out",
                folded.to_str().unwrap(),
            ])
            .unwrap(),
        )
        .unwrap();
        assert!(out.contains("5 event(s), 2 span(s), 1 instant(s)"), "{out}");
        // request total 10µs = 0.010 ms, self 6µs; work_item total/self 4µs
        assert!(out.contains("request           1   0.010"), "{out}");
        assert!(out.contains("work_item         1   0.004"), "{out}");
        assert!(out.contains("request 6\n"), "{out}");
        assert!(out.contains("request;work_item 4\n"), "{out}");
        let folded_text = std::fs::read_to_string(&folded).unwrap();
        assert_eq!(folded_text, "request 6\nrequest;work_item 4\n");
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&folded).ok();
    }

    /// A minimal suite bench document with one class and the given
    /// per-phase throughputs.
    fn bench_doc(engine_thrpt: f64, serve_thrpt: f64) -> String {
        format!(
            "{{\"bench\":\"workload_suites\",\"mode\":\"kick-tires\",\"seed\":\"7\",\
             \"classes\":[{{\"class\":\"CQ\",\"enumerated\":120,\"sampled\":2,\
             \"engine\":{{\"operations\":6,\"wall_seconds\":0.1,\"throughput\":{engine_thrpt},\
             \"latency_ms\":{{\"p50\":1.5,\"p95\":2.5,\"p99\":3.5}}}},\
             \"serve\":{{\"operations\":3,\"wall_seconds\":0.1,\"throughput\":{serve_thrpt},\
             \"latency_ms\":{{\"p50\":1.0,\"p95\":2.0,\"p99\":3.0}}}}}}]}}\n"
        )
    }

    #[test]
    fn bench_report_renders_a_table_without_baseline() {
        let current = temp("bench-current.json");
        std::fs::write(&current, bench_doc(100.0, 80.0)).unwrap();
        let out = run_report(
            &args_from(["report", "bench", "--current", current.to_str().unwrap()]).unwrap(),
        )
        .unwrap();
        assert!(out.contains("baseline    : none"), "{out}");
        assert!(out.contains("CQ     engine      100.0"), "{out}");
        assert!(out.contains("CQ     serve        80.0"), "{out}");
        assert!(!out.contains("REGRESSION"), "{out}");
        std::fs::remove_file(&current).ok();
    }

    #[test]
    fn bench_report_flags_throughput_regressions_against_baseline() {
        let current = temp("bench-cur.json");
        let baseline = temp("bench-base.json");
        // engine dropped 40% (flagged), serve gained 10% (not flagged)
        std::fs::write(&current, bench_doc(60.0, 110.0)).unwrap();
        std::fs::write(&baseline, bench_doc(100.0, 100.0)).unwrap();
        let out = run_report(
            &args_from([
                "report",
                "bench",
                "--current",
                current.to_str().unwrap(),
                "--baseline",
                baseline.to_str().unwrap(),
            ])
            .unwrap(),
        )
        .unwrap();
        assert!(out.contains("-40.0% ← REGRESSION"), "{out}");
        assert!(out.contains("+10.0%"), "{out}");
        assert!(out.contains("regressions : 1 phase(s)"), "{out}");
        std::fs::remove_file(&current).ok();
        std::fs::remove_file(&baseline).ok();
    }

    #[test]
    fn bench_report_rejects_non_suite_documents() {
        let path = temp("bench-notsuite.json");
        std::fs::write(&path, "{\"bench\":\"serve_loadgen\"}\n").unwrap();
        let err = run_report(
            &args_from(["report", "bench", "--current", path.to_str().unwrap()]).unwrap(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("classes"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    /// A synthetic request log: two ok requests (one slow), one shed.
    fn sample_request_log() -> String {
        use cqc_obs::{Outcome, WideEvent};
        let ev =
            |seq, t_ns, class: &str, outcome, status, queue_ns, handle_ns, trace: &str| WideEvent {
                seq,
                t_ns,
                protocol: "http",
                endpoint: "count",
                class: class.to_string(),
                outcome,
                status,
                queue_ns,
                handle_ns,
                prepare_ns: handle_ns / 4,
                evaluate_ns: handle_ns / 2,
                bytes: 64,
                slot: 1,
                gen: 1,
                conn_req: seq + 1,
                trace: trace.to_string(),
            };
        let mut text = String::new();
        for e in [
            ev(0, 0, "Cq", Outcome::Ok, 200, 50_000, 2_000_000, ""),
            ev(
                1,
                500_000_000,
                "Dcq",
                Outcome::Ok,
                200,
                100_000,
                9_000_000,
                "00-abc",
            ),
            ev(2, 2_100_000_000, "", Outcome::Shed, 503, 0, 0, ""),
        ] {
            text.push_str(&e.to_json_line());
            text.push('\n');
        }
        text.push_str("{\"type\":\"dropped\",\"count\":4}\n");
        text
    }

    #[test]
    fn requests_report_ranks_classes_and_sheds() {
        let path = temp("requests.ndjson");
        std::fs::write(&path, sample_request_log()).unwrap();
        let out = run_report(
            &args_from([
                "report",
                "requests",
                "--log",
                path.to_str().unwrap(),
                "--top",
                "2",
            ])
            .unwrap(),
        )
        .unwrap();
        assert!(
            out.contains("3 wide event(s) (ok 2, error 0, shed 1, panic 0)"),
            "{out}"
        );
        assert!(out.contains("4 older event(s) dropped"), "{out}");
        // the slow Dcq request ranks first and carries its trace id
        let slow_at = out.find("Dcq [00-abc]").expect("slow request listed");
        let fast_at = out.find("\n0        http").expect("fast request listed");
        assert!(slow_at < fast_at, "{out}");
        // per-class table has one row per class, "-" for the shed's empty class
        assert!(out.contains("per-class handle latency"), "{out}");
        assert!(out.contains("Cq"), "{out}");
        assert!(out.contains("-    "), "{out}");
        // the shed landed 2.1 s after the first event
        assert!(out.contains("t+2   s : 1 shed"), "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn requests_report_rejects_wide_free_files() {
        let path = temp("requests-empty.ndjson");
        std::fs::write(&path, "{\"type\":\"dropped\",\"count\":1}\n").unwrap();
        let err = run_report(
            &args_from(["report", "requests", "--log", path.to_str().unwrap()]).unwrap(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("no wide events"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_reports_are_usage_errors() {
        for bad in [vec!["report"], vec!["report", "icicle"]] {
            let err = run_report(&args_from(bad.clone()).unwrap()).unwrap_err();
            assert!(matches!(err, CliError::Usage(_)), "{bad:?} -> {err}");
        }
        // malformed trace lines are data errors, not panics
        let path = temp("bad.ndjson");
        std::fs::write(&path, "{\"type\":\"enter\"}\n").unwrap();
        let err =
            run_report(&args_from(["report", "flame", "--trace", path.to_str().unwrap()]).unwrap())
                .unwrap_err();
        assert!(err.to_string().contains("trace line 1"), "{err}");
        std::fs::remove_file(&path).ok();
    }
}
