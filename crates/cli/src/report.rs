//! The `report` command: offline analysis of `--trace` NDJSON files.
//!
//! `cqc report flame --trace FILE` parses the event stream a traced run
//! wrote, reassembles the span forest (`cqc_obs::trace::build_forest`),
//! and renders a per-phase wall-time table plus flamegraph-compatible
//! folded stacks (self-time in microseconds). `--folded-out PATH` writes
//! the raw folded lines for external flamegraph tooling.

use crate::{Args, CliError};
use cqc_obs::trace::{build_forest, fold_stacks, phase_totals, Event, EventKind};
use cqc_serve::json::{parse, Value};

/// Run `cqc report`.
pub fn run_report(args: &Args) -> Result<String, CliError> {
    match args.positional() {
        [kind] if kind == "flame" => run_flame(args),
        [other, ..] => Err(CliError::Usage(format!(
            "unknown report `{other}` (expected `flame`); run `cqc help`"
        ))),
        [] => Err(CliError::Usage(
            "`report` expects a report kind (`cqc report flame --trace FILE`)".into(),
        )),
    }
}

/// Parse one NDJSON trace file back into events (the inverse of
/// `Trace::to_ndjson`). Returns the events plus the dropped-event count
/// from the trailing marker line, if any.
fn parse_trace(text: &str) -> Result<(Vec<Event>, u64), CliError> {
    let bad = |line: usize, m: String| CliError::Facts(format!("trace line {}: {m}", line + 1));
    let mut events = Vec::new();
    let mut dropped = 0u64;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = parse(line).map_err(|e| bad(i, e.to_string()))?;
        let kind_name = v
            .get("type")
            .and_then(Value::as_str)
            .ok_or_else(|| bad(i, "missing `type`".into()))?;
        if kind_name == "dropped" {
            dropped += v.get("count").and_then(Value::as_u64).unwrap_or(0);
            continue;
        }
        let name = v
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| bad(i, "missing `name`".into()))?
            .to_string();
        let hex_id = |key: &str| -> Result<u64, CliError> {
            let raw = v
                .get(key)
                .and_then(Value::as_str)
                .ok_or_else(|| bad(i, format!("missing hex member `{key}`")))?;
            u64::from_str_radix(raw, 16).map_err(|e| bad(i, format!("bad `{key}`: {e}")))
        };
        let kind = match kind_name {
            "enter" => EventKind::Enter {
                name,
                id: hex_id("id")?,
                parent: hex_id("parent")?,
            },
            "exit" => EventKind::Exit {
                name,
                id: hex_id("id")?,
            },
            "instant" => EventKind::Instant {
                name,
                detail: v
                    .get("detail")
                    .and_then(Value::as_str)
                    .unwrap_or_default()
                    .to_string(),
            },
            other => return Err(bad(i, format!("unknown event type `{other}`"))),
        };
        events.push(Event {
            thread: v.get("thread").and_then(Value::as_u64).unwrap_or(0) as u32,
            seq: v.get("seq").and_then(Value::as_u64).unwrap_or(0),
            t_ns: v.get("t_ns").and_then(Value::as_u64).unwrap_or(0),
            kind,
        });
    }
    events.sort_by_key(|e| (e.thread, e.seq));
    Ok((events, dropped))
}

fn run_flame(args: &Args) -> Result<String, CliError> {
    let path = args.require("trace")?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Io(format!("cannot read `{path}`: {e}")))?;
    let (events, dropped) = parse_trace(&text)?;
    let forest = build_forest(&events);
    let phases = phase_totals(&forest);
    let folded = fold_stacks(&forest);
    let instants = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Instant { .. }))
        .count();

    let mut out = String::new();
    out.push_str(&format!(
        "trace       : {} event(s), {} span(s), {instants} instant(s)",
        events.len(),
        forest.nodes.len(),
    ));
    if dropped > 0 {
        out.push_str(&format!(
            " — WARNING: {dropped} event(s) dropped (trace incomplete)"
        ));
    }
    out.push('\n');

    out.push_str("\nphase         spans   total_ms\n");
    for (name, count, total_ns) in &phases {
        out.push_str(&format!(
            "{name:<13} {count:>5}   {:.3}\n",
            *total_ns as f64 / 1e6
        ));
    }

    out.push_str("\nfolded stacks (self-time µs):\n");
    let mut folded_text = String::new();
    for (stack, self_us) in &folded {
        folded_text.push_str(&format!("{stack} {self_us}\n"));
    }
    out.push_str(&folded_text);

    if let Some(folded_path) = args.value_of("folded-out") {
        std::fs::write(folded_path, &folded_text)
            .map_err(|e| CliError::Io(format!("cannot write `{folded_path}`: {e}")))?;
        out.push_str(&format!("\nfolded      : wrote {folded_path}\n"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args_from;
    use cqc_obs::trace::Trace;
    use std::path::PathBuf;

    fn temp(name: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("cqc-cli-report-{}-{name}", std::process::id()));
        path
    }

    /// A hand-built trace: request(10µs) > work_item(4µs), one instant.
    fn sample_trace() -> Trace {
        let ev = |seq: u64, t_ns: u64, kind: EventKind| Event {
            thread: 0,
            seq,
            t_ns,
            kind,
        };
        Trace {
            events: vec![
                ev(
                    0,
                    0,
                    EventKind::Enter {
                        name: "request".into(),
                        id: 0xAB,
                        parent: 0,
                    },
                ),
                ev(
                    1,
                    1_000,
                    EventKind::Instant {
                        name: "traceparent".into(),
                        detail: "00-abc".into(),
                    },
                ),
                ev(
                    2,
                    2_000,
                    EventKind::Enter {
                        name: "work_item".into(),
                        id: 0xCD,
                        parent: 0xAB,
                    },
                ),
                ev(
                    3,
                    6_000,
                    EventKind::Exit {
                        name: "work_item".into(),
                        id: 0xCD,
                    },
                ),
                ev(
                    4,
                    10_000,
                    EventKind::Exit {
                        name: "request".into(),
                        id: 0xAB,
                    },
                ),
            ],
            dropped: 0,
        }
    }

    #[test]
    fn ndjson_round_trips_through_the_parser() {
        let trace = sample_trace();
        let (events, dropped) = parse_trace(&trace.to_ndjson()).unwrap();
        assert_eq!(events, trace.events);
        assert_eq!(dropped, 0);
        // a dropped marker survives the round trip as a count
        let truncated = Trace {
            events: trace.events.clone(),
            dropped: 3,
        };
        let (_, dropped) = parse_trace(&truncated.to_ndjson()).unwrap();
        assert_eq!(dropped, 3);
    }

    #[test]
    fn flame_report_renders_phases_and_folded_stacks() {
        let path = temp("flame.ndjson");
        let folded = temp("flame.folded");
        std::fs::write(&path, sample_trace().to_ndjson()).unwrap();
        let out = run_report(
            &args_from([
                "report",
                "flame",
                "--trace",
                path.to_str().unwrap(),
                "--folded-out",
                folded.to_str().unwrap(),
            ])
            .unwrap(),
        )
        .unwrap();
        assert!(out.contains("5 event(s), 2 span(s), 1 instant(s)"), "{out}");
        // request total 10µs = 0.010 ms, self 6µs; work_item total/self 4µs
        assert!(out.contains("request           1   0.010"), "{out}");
        assert!(out.contains("work_item         1   0.004"), "{out}");
        assert!(out.contains("request 6\n"), "{out}");
        assert!(out.contains("request;work_item 4\n"), "{out}");
        let folded_text = std::fs::read_to_string(&folded).unwrap();
        assert_eq!(folded_text, "request 6\nrequest;work_item 4\n");
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&folded).ok();
    }

    #[test]
    fn bad_reports_are_usage_errors() {
        for bad in [vec!["report"], vec!["report", "icicle"]] {
            let err = run_report(&args_from(bad.clone()).unwrap()).unwrap_err();
            assert!(matches!(err, CliError::Usage(_)), "{bad:?} -> {err}");
        }
        // malformed trace lines are data errors, not panics
        let path = temp("bad.ndjson");
        std::fs::write(&path, "{\"type\":\"enter\"}\n").unwrap();
        let err =
            run_report(&args_from(["report", "flame", "--trace", path.to_str().unwrap()]).unwrap())
                .unwrap_err();
        assert!(err.to_string().contains("trace line 1"), "{err}");
        std::fs::remove_file(&path).ok();
    }
}
