//! The `generate` command: produce workload databases (random graphs, grids,
//! regular digraphs, random ternary structures) in the facts-file format.

use crate::{Args, CliError};
use cqc_data::{write_facts, Structure};
use cqc_workloads::{erdos_renyi, graph_database, grid_graph, random_regularish};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The supported workload families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Family {
    ErdosRenyi,
    Grid,
    Regular,
    Ternary,
}

fn parse_family(raw: &str) -> Result<Family, CliError> {
    match raw {
        "erdos-renyi" | "er" | "gnp" => Ok(Family::ErdosRenyi),
        "grid" => Ok(Family::Grid),
        "regular" => Ok(Family::Regular),
        "ternary" => Ok(Family::Ternary),
        other => Err(CliError::Usage(format!(
            "unknown family `{other}` (expected erdos-renyi | grid | regular | ternary)"
        ))),
    }
}

/// Build the database described by the arguments (exposed for tests).
pub fn build_workload(args: &Args) -> Result<Structure, CliError> {
    let family = parse_family(args.value_of("family").unwrap_or("erdos-renyi"))?;
    let seed: u64 = args.get_or("seed", 1)?;
    let relation = args.value_of("relation").map(str::to_string);
    let symmetric = args.switch("symmetric");
    let mut rng = StdRng::seed_from_u64(seed);

    let db = match family {
        Family::ErdosRenyi => {
            let n: usize = args.get_or("n", 100)?;
            if n == 0 {
                return Err(CliError::Usage("`--n` must be positive".into()));
            }
            let avg: f64 = args.get_or("avg-degree", 3.0)?;
            let p = (avg / n as f64).clamp(0.0, 1.0);
            let g = erdos_renyi(n, p, &mut rng);
            graph_database(&g, relation.as_deref().unwrap_or("E"), symmetric)
        }
        Family::Grid => {
            let rows: usize = args.get_or("rows", 8)?;
            let cols: usize = args.get_or("cols", 8)?;
            if rows == 0 || cols == 0 {
                return Err(CliError::Usage(
                    "`--rows` and `--cols` must be positive".into(),
                ));
            }
            let g = grid_graph(rows, cols);
            graph_database(&g, relation.as_deref().unwrap_or("E"), symmetric)
        }
        Family::Regular => {
            let n: usize = args.get_or("n", 100)?;
            let degree: usize = args.get_or("degree", 3)?;
            if n == 0 {
                return Err(CliError::Usage("`--n` must be positive".into()));
            }
            let g = random_regularish(n, degree.min(n.saturating_sub(1)), &mut rng);
            graph_database(&g, relation.as_deref().unwrap_or("E"), symmetric)
        }
        Family::Ternary => {
            let n: usize = args.get_or("n", 60)?;
            let facts: usize = args.get_or("facts", 4 * n)?;
            if n == 0 {
                return Err(CliError::Usage("`--n` must be positive".into()));
            }
            cqc_workloads::graphs::random_ternary_database(n, facts, &mut rng)
        }
    };
    Ok(db)
}

/// Run `cqc generate`.
///
/// Accepts `--threads N` (0 = auto) like `count` and `sample` for CLI
/// uniformity. Generation itself stays single-threaded by design: the
/// emitted database is a pure function of `--seed` drawn from one
/// sequential RNG stream, and keeping that artifact byte-stable matters
/// more than generator wall time (the summary still reports the resolved
/// thread count so scripts can scrape one format everywhere).
pub fn run_generate(args: &Args) -> Result<String, CliError> {
    let threads: usize = args.get_or("threads", 0)?;
    let db = build_workload(args)?;
    let rendered = write_facts(&db);
    match args.value_of("out") {
        Some(path) => {
            std::fs::write(path, &rendered)
                .map_err(|e| CliError::Io(format!("cannot write `{path}`: {e}")))?;
            Ok(format!(
                "wrote {} elements, {} facts to {path} (threads={})\n",
                db.universe_size(),
                db.fact_count(),
                cqc_runtime::resolve_threads(threads)
            ))
        }
        None => Ok(rendered),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args_from;
    use cqc_data::parse_facts;

    #[test]
    fn family_parsing() {
        assert_eq!(parse_family("erdos-renyi").unwrap(), Family::ErdosRenyi);
        assert_eq!(parse_family("er").unwrap(), Family::ErdosRenyi);
        assert_eq!(parse_family("grid").unwrap(), Family::Grid);
        assert_eq!(parse_family("regular").unwrap(), Family::Regular);
        assert_eq!(parse_family("ternary").unwrap(), Family::Ternary);
        assert!(parse_family("smallworld").is_err());
    }

    #[test]
    fn erdos_renyi_output_round_trips() {
        let out = run_generate(
            &args_from([
                "generate",
                "--family",
                "erdos-renyi",
                "--n",
                "30",
                "--avg-degree",
                "3",
                "--seed",
                "11",
            ])
            .unwrap(),
        )
        .unwrap();
        let db = parse_facts(&out).unwrap();
        assert_eq!(db.universe_size(), 30);
        assert!(db.fact_count() > 0);
        assert!(db.signature().symbol("E").is_some());
    }

    #[test]
    fn grid_has_the_expected_number_of_edges() {
        let out = run_generate(
            &args_from(["generate", "--family", "grid", "--rows", "3", "--cols", "4"]).unwrap(),
        )
        .unwrap();
        let db = parse_facts(&out).unwrap();
        assert_eq!(db.universe_size(), 12);
        // 3x4 grid: 9 horizontal + 8 vertical undirected edges, both directions
        assert_eq!(db.fact_count(), 34);
    }

    #[test]
    fn symmetric_closes_the_edge_relation_under_reversal() {
        let out = run_generate(
            &args_from([
                "generate",
                "--family",
                "er",
                "--n",
                "20",
                "--avg-degree",
                "3",
                "--seed",
                "9",
                "--symmetric",
            ])
            .unwrap(),
        )
        .unwrap();
        let db = parse_facts(&out).unwrap();
        let e = db.signature().symbol("E").unwrap();
        let rel = db.relation(e);
        for t in rel.iter() {
            let rev = [t.get(1), t.get(0)];
            assert!(rel.contains_values(&rev), "missing reverse of {:?}", t);
        }
    }

    #[test]
    fn ternary_workload_uses_arity_three() {
        let out = run_generate(
            &args_from([
                "generate", "--family", "ternary", "--n", "20", "--facts", "50",
            ])
            .unwrap(),
        )
        .unwrap();
        let db = parse_facts(&out).unwrap();
        assert_eq!(db.universe_size(), 20);
        let (_, _, arity) = db.signature().iter().next().unwrap();
        assert_eq!(arity, 3);
    }

    #[test]
    fn deterministic_given_the_seed() {
        let a = run_generate(
            &args_from(["generate", "--family", "er", "--n", "25", "--seed", "5"]).unwrap(),
        )
        .unwrap();
        let b = run_generate(
            &args_from(["generate", "--family", "er", "--n", "25", "--seed", "5"]).unwrap(),
        )
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn writes_to_a_file_when_out_is_given() {
        let mut path = std::env::temp_dir();
        path.push(format!("cqc-cli-generate-{}.facts", std::process::id()));
        let out = run_generate(
            &args_from([
                "generate",
                "--family",
                "grid",
                "--rows",
                "2",
                "--cols",
                "2",
                "--out",
                path.to_str().unwrap(),
            ])
            .unwrap(),
        )
        .unwrap();
        assert!(out.contains("wrote"));
        let db = parse_facts(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(db.universe_size(), 4);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn zero_sizes_are_rejected() {
        assert!(
            run_generate(&args_from(["generate", "--family", "er", "--n", "0"]).unwrap()).is_err()
        );
        assert!(
            run_generate(&args_from(["generate", "--family", "grid", "--rows", "0"]).unwrap())
                .is_err()
        );
    }
}
