//! # cqcount — approximately counting answers to conjunctive queries with
//! disequalities and negations
//!
//! A from-scratch Rust implementation of the PODS 2022 paper by Focke,
//! Goldberg, Roth and Živný, including every substrate it builds on. This
//! facade crate re-exports the workspace crates under stable names:
//!
//! * [`data`] — relational databases ([`prelude::Database`], the documented
//!   alias of `Structure`; the paper uses the two terms interchangeably),
//! * [`hypergraph`] — hypergraphs, tree decompositions, width measures,
//! * [`query`] — CQ / DCQ / ECQ queries, parsing, associated structures,
//! * [`hom`] — homomorphism decision and counting engines,
//! * [`dlm`] — oracle-based approximate edge counting
//!   (Dell–Lapinskas–Meeks framework),
//! * [`automata`] — tree automata and #TA counting,
//! * [`core`] — the paper's algorithms behind the [`prelude::Engine`] /
//!   [`prelude::PreparedQuery`] API (FPTRAS, FPRAS, sampling, unions,
//!   locally injective homomorphisms, the Observation 10 construction),
//! * [`runtime`] — the deterministic parallel runtime (std-only persistent
//!   worker pool, seed-splitting; estimates are bit-identical for any
//!   thread count and pool width),
//! * [`serve`] — the sharded serving front end (JSON request loop; sharded
//!   responses are byte-identical to single-node runs),
//! * [`workloads`] — generators used by the examples and benchmarks.
//!
//! ## Quick start: plan once, count many
//!
//! Query-side analysis (class dispatch, decomposition search, oracle
//! construction) is expensive; data-side evaluation is the hot path. The
//! [`prelude::Engine`] separates the two — prepare a query once, then
//! evaluate it against any number of databases:
//!
//! ```
//! use cqcount::prelude::*;
//!
//! // A small social network: F(a, b) means "a counts b as a friend".
//! fn network(edges: &[(u32, u32)]) -> Database {
//!     let mut b = StructureBuilder::new(6);
//!     b.relation("F", 2);
//!     for &(u, v) in edges {
//!         b.fact("F", &[u, v]).unwrap();
//!     }
//!     b.build()
//! }
//! let monday = network(&[(0, 1), (0, 2), (1, 3), (3, 0), (3, 4)]);
//! let tuesday = network(&[(0, 1), (0, 2), (1, 3), (3, 0), (3, 4), (4, 5), (4, 0)]);
//!
//! // The paper's query (1): people with at least two *distinct* friends.
//! let q = parse_query("ans(x) :- F(x, y), F(x, z), y != z").unwrap();
//!
//! // Plan once...
//! let engine = Engine::builder().accuracy(0.25, 0.05).seed(42).build().unwrap();
//! let prepared = engine.prepare(&q).unwrap();
//!
//! // ...then count against each day's snapshot with the same plan.
//! let reports = prepared.count_batch(&[monday, tuesday]).unwrap();
//! assert_eq!(reports[0].estimate, 2.0); // persons 0 and 3
//! assert_eq!(reports[1].estimate, 3.0); // person 4 now qualifies too
//!
//! // Every report says what it guarantees and what it cost.
//! assert!(reports[0].method == CountMethod::Fptras);
//! assert!(reports[0].telemetry.oracle_calls > 0);
//! ```
//!
//! For one-off calls the legacy free functions
//! ([`prelude::approx_count_answers`], [`prelude::sample_answers`], …)
//! remain available; they are thin wrappers that plan and evaluate in one
//! step, and return bit-identical estimates for the same seed.

#![forbid(unsafe_code)]

pub use cqc_automata as automata;
pub use cqc_core as core;
pub use cqc_data as data;
pub use cqc_dlm as dlm;
pub use cqc_hom as hom;
pub use cqc_hypergraph as hypergraph;
pub use cqc_query as query;
pub use cqc_runtime as runtime;
pub use cqc_serve as serve;
pub use cqc_workloads as workloads;

/// The most commonly used items in one import.
pub mod prelude {
    pub use cqc_core::{
        approx_count_answers, count_locally_injective_homomorphisms, count_union,
        exact_count_answers, fpras_count, fptras_count, hamiltonian_path_query, naive_monte_carlo,
        sample_answers, undirected_graph_database, ApproxConfig, Backend, CoreError, CountEstimate,
        CountMethod, Engine, EngineBuilder, EstimateReport, EvalError, PlanError, PlanSummary,
        PreparedQuery, Telemetry,
    };
    pub use cqc_data::{Database, Structure, StructureBuilder, Val};
    pub use cqc_query::{parse_query, Query, QueryBuilder, QueryClass};
    pub use cqc_runtime::pool::{resolve_pool_workers, Pool};
    pub use cqc_runtime::{resolve_threads, split_seed, split_seed2, Runtime};
    pub use cqc_serve::{count_sharded, Server, ServerConfig};
}
