//! # cqcount — approximately counting answers to conjunctive queries with
//! disequalities and negations
//!
//! A from-scratch Rust implementation of the PODS 2022 paper by Focke,
//! Goldberg, Roth and Živný, including every substrate it builds on. This
//! facade crate re-exports the workspace crates under stable names:
//!
//! * [`data`] — relational databases / structures,
//! * [`hypergraph`] — hypergraphs, tree decompositions, width measures,
//! * [`query`] — CQ / DCQ / ECQ queries, parsing, associated structures,
//! * [`hom`] — homomorphism decision and counting engines,
//! * [`dlm`] — oracle-based approximate edge counting
//!   (Dell–Lapinskas–Meeks framework),
//! * [`automata`] — tree automata and #TA counting,
//! * [`core`] — the paper's algorithms (FPTRAS, FPRAS, sampling, unions,
//!   locally injective homomorphisms, the Observation 10 construction),
//! * [`workloads`] — generators used by the examples and benchmarks.
//!
//! ## Quick start
//!
//! ```
//! use cqcount::prelude::*;
//!
//! // A small social network: F(a, b) means "a counts b as a friend".
//! let mut b = StructureBuilder::new(5);
//! b.relation("F", 2);
//! for (u, v) in [(0, 1), (0, 2), (1, 3), (3, 0), (3, 4)] {
//!     b.fact("F", &[u, v]).unwrap();
//! }
//! let db = b.build();
//!
//! // The paper's query (1): people with at least two *distinct* friends.
//! let q = parse_query("ans(x) :- F(x, y), F(x, z), y != z").unwrap();
//!
//! let cfg = ApproxConfig::new(0.25, 0.05);
//! let estimate = approx_count_answers(&q, &db, &cfg).unwrap();
//! assert_eq!(estimate.estimate, 2.0); // persons 0 and 3
//! ```

#![forbid(unsafe_code)]

pub use cqc_automata as automata;
pub use cqc_core as core;
pub use cqc_data as data;
pub use cqc_dlm as dlm;
pub use cqc_hom as hom;
pub use cqc_hypergraph as hypergraph;
pub use cqc_query as query;
pub use cqc_workloads as workloads;

/// The most commonly used items in one import.
pub mod prelude {
    pub use cqc_core::{
        approx_count_answers, count_locally_injective_homomorphisms, count_union,
        exact_count_answers, fpras_count, fptras_count, hamiltonian_path_query, naive_monte_carlo,
        sample_answers, undirected_graph_database, ApproxConfig, CountEstimate, CountMethod,
    };
    pub use cqc_data::{Database, Structure, StructureBuilder, Val};
    pub use cqc_query::{parse_query, Query, QueryBuilder, QueryClass};
}
