#!/usr/bin/env bash
# Kick-the-tires artifact run (minutes, not hours): build the release
# binary, verify the enumerated workload suites match the committed golden
# manifest, run the suite bench in its small configuration, and diff the
# fresh trajectory point against the committed BENCH_workloads.json.
#
# Exits non-zero if the build fails, the suite membership drifted from
# tests/golden/workload_suites.txt, or any benched request errored.
# Throughput regressions are *flagged* in out/report.txt, not fatal —
# wall-clock numbers are machine-dependent.
set -euo pipefail
cd "$(dirname "$0")/.."

out=out
mkdir -p "$out"

cargo build --release

# 1. Suite membership must match the committed golden manifest exactly.
./target/release/cqc suite manifest > "$out/workload_suites.txt"
diff tests/golden/workload_suites.txt "$out/workload_suites.txt"
echo "suite manifest matches tests/golden/workload_suites.txt"

# 2. Save the committed trajectory point as the comparison baseline.
baseline_args=()
if [ -f BENCH_workloads.json ]; then
    cp BENCH_workloads.json "$out/BENCH_workloads.baseline.json"
    baseline_args=(--baseline "$out/BENCH_workloads.baseline.json")
fi

# 3. Run the workload suites end to end (engine ops + serve phase).
./target/release/cqc suite --mode kick-tires --out BENCH_workloads.json

# 4. Render the trajectory report (with the baseline diff when one exists).
./target/release/cqc report bench --current BENCH_workloads.json \
    "${baseline_args[@]}" | tee "$out/report.txt"
