#!/usr/bin/env bash
# Full artifact run: the same pipeline as scripts/kick-tires.sh but with
# the large suite configuration (24 queries per class, 60-tuple databases,
# 160 serve requests per class, epsilon 0.35 / delta 0.1) plus the
# criterion benches. Expect tens of minutes on a laptop.
set -euo pipefail
cd "$(dirname "$0")/.."

out=out
mkdir -p "$out"

cargo build --release

./target/release/cqc suite manifest > "$out/workload_suites.txt"
diff tests/golden/workload_suites.txt "$out/workload_suites.txt"
echo "suite manifest matches tests/golden/workload_suites.txt"

baseline_args=()
if [ -f BENCH_workloads.json ]; then
    cp BENCH_workloads.json "$out/BENCH_workloads.baseline.json"
    baseline_args=(--baseline "$out/BENCH_workloads.baseline.json")
fi

./target/release/cqc suite --mode full --out "$out/BENCH_workloads.full.json"

./target/release/cqc report bench --current "$out/BENCH_workloads.full.json" \
    "${baseline_args[@]}" | tee "$out/report.txt"

# The criterion benches (per-class engine ops + the serving layer).
cargo bench -p cqc-bench --bench workload_suite 2>&1 | tee "$out/bench_workload_suite.txt"
cargo bench -p cqc-bench --bench net_loadgen 2>&1 | tee "$out/bench_net_loadgen.txt"
