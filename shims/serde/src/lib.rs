//! Offline no-op stand-in for `serde`.
//!
//! The workspace derives `Serialize` / `Deserialize` on its data types but
//! never serializes anything (there is no `serde_json` in the tree), so this
//! shim provides the two trait names plus inert derive macros that accept
//! `#[serde(...)]` field attributes. If real serialization is ever needed,
//! swap this path dependency for the crates.io `serde` and everything keeps
//! compiling.

#![forbid(unsafe_code)]

/// Marker trait mirroring `serde::Serialize` (no methods in the shim).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods in the shim).
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};
