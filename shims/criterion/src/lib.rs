//! Offline stand-in for the subset of `criterion` this workspace uses:
//! `Criterion::benchmark_group`, per-group knobs (`sample_size`,
//! `warm_up_time`, `measurement_time`), `bench_function` /
//! `bench_with_input`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurements are honest wall-clock timings (median over the sample
//! count, with the byte-identical output format kept deliberately simple);
//! there is no statistical analysis, HTML report, or command-line filter.
//! Swap this path dependency for the crates.io `criterion` to get the full
//! harness without source changes.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported for benchmark bodies.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_secs(2),
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        run_benchmark(
            &id.0,
            10,
            Duration::from_millis(200),
            Duration::from_secs(2),
            &mut f,
        );
        self
    }
}

/// A group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// How long to warm up before timing.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Upper bound on the total time spent timing one benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.0);
        run_benchmark(
            &full,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            &mut f,
        );
        self
    }

    /// Run a benchmark parameterised by an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.0);
        run_benchmark(
            &full,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            &mut |b| f(b, input),
        );
        self
    }

    /// Finish the group (no-op in the shim).
    pub fn finish(self) {}
}

fn run_benchmark(
    name: &str,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    f: &mut dyn FnMut(&mut Bencher),
) {
    // Warm-up: run the body until the warm-up budget is spent.
    let warm_start = Instant::now();
    while warm_start.elapsed() < warm_up_time {
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.iters == 0 {
            break; // body never called iter(); avoid spinning forever
        }
    }
    // Measurement: `sample_size` samples or until the time budget runs out.
    let mut per_iter: Vec<f64> = Vec::with_capacity(sample_size);
    let measure_start = Instant::now();
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.iters > 0 {
            per_iter.push(b.elapsed.as_secs_f64() / b.iters as f64);
        }
        if measure_start.elapsed() > measurement_time {
            break;
        }
    }
    if per_iter.is_empty() {
        println!("{name:<48} (no measurement: bencher.iter was never called)");
        return;
    }
    per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    println!(
        "{name:<48} median {:>12}  mean {:>12}  ({} samples)",
        format_time(median),
        format_time(mean),
        per_iter.len()
    );
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.1} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

/// Passed to benchmark bodies; `iter` times the closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time repeated executions of `f`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // A small fixed batch keeps per-call overhead amortised without the
        // full criterion calibration machinery.
        let iters = 3u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.elapsed += start.elapsed();
        self.iters += iters;
    }
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(pub String);

impl BenchmarkId {
    /// A `name/parameter` identifier.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// An identifier that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(format!("{parameter}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Define a benchmark group function calling each target with a `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(20));
        let mut calls = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(5), &5u64, |b, n| {
            b.iter(|| {
                calls += 1;
                (0..*n).sum::<u64>()
            })
        });
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("a", 3).0, "a/3");
        assert_eq!(BenchmarkId::from_parameter(7).0, "7");
    }
}
