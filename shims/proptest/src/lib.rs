//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! Implements random-input property testing with deterministic per-test
//! seeding: strategies (`Strategy`, `Just`, ranges, tuples, `any`,
//! `collection::vec` / `btree_set`, a tiny regex-class string strategy,
//! `prop_oneof!`), the `proptest!` macro, and the `prop_assert*` /
//! `prop_assume!` macros. There is no shrinking — a failing case panics with
//! the generated inputs' `Debug` rendering instead.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! this as a path dependency; swapping it for the real `proptest` restores
//! shrinking without source changes.

#![forbid(unsafe_code)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

// Re-exports used by the macro expansions.
#[doc(hidden)]
pub mod __rt {
    pub use rand::rngs::StdRng;
    pub use rand::{Rng, SeedableRng};

    /// FNV-1a hash of the test name, for deterministic per-test seeds.
    pub fn seed_for(name: &str) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

use __rt::StdRng;
use rand::Rng as _;

/// Marker returned by `prop_assume!` to skip (reject) the current case.
#[derive(Debug, Clone, Copy)]
pub struct TestCaseReject;

/// Run-time configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of random values (no shrinking in the shim).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Map generated values through a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from a strategy derived from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Filter generated values (retrying up to a fixed budget).
    fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        self.0.generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive candidates");
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
}

/// A `Vec` of strategies generates one value per element (mirrors the
/// blanket `Strategy for Vec<S>` in real proptest).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

/// Values with a canonical "any" strategy (mirrors `proptest::arbitrary`).
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arbitrary_via_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}
arbitrary_via_standard!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for a type: `any::<u64>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// A weighted union of strategies (used by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Build a union from weighted, boxed arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| *w as u64).sum::<u64>().max(1);
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        let mut pick = rng.gen_range(0..self.total);
        for (w, strat) in &self.arms {
            if pick < *w as u64 {
                return strat.generate(rng);
            }
            pick -= *w as u64;
        }
        self.arms.last().unwrap().1.generate(rng)
    }
}

/// String strategies: a `&'static str` is interpreted as a tiny regex subset
/// (literal characters, `[a-z0-9_]`-style classes, and `{m,n}` / `{n}` / `?`
/// / `*` / `+` quantifiers) exactly rich enough for the patterns the test
/// suite uses.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut StdRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // one item: a class or a literal character
        let class: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .expect("unterminated character class in pattern")
                + i;
            let mut set = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    let (lo, hi) = (chars[j], chars[j + 2]);
                    for c in lo..=hi {
                        set.push(c);
                    }
                    j += 3;
                } else {
                    set.push(chars[j]);
                    j += 1;
                }
            }
            i = close + 1;
            set
        } else if chars[i] == '\\' && i + 1 < chars.len() {
            i += 2;
            vec![chars[i - 1]]
        } else {
            i += 1;
            vec![chars[i - 1]]
        };
        // optional quantifier
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .expect("unterminated quantifier in pattern")
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((a, b)) => (
                    a.trim().parse::<usize>().expect("bad quantifier"),
                    b.trim().parse::<usize>().expect("bad quantifier"),
                ),
                None => {
                    let n = body.trim().parse::<usize>().expect("bad quantifier");
                    (n, n)
                }
            }
        } else if i < chars.len() && chars[i] == '?' {
            i += 1;
            (0, 1)
        } else if i < chars.len() && chars[i] == '*' {
            i += 1;
            (0, 8)
        } else if i < chars.len() && chars[i] == '+' {
            i += 1;
            (1, 8)
        } else {
            (1, 1)
        };
        let reps = rng.gen_range(lo..=hi);
        for _ in 0..reps {
            out.push(class[rng.gen_range(0..class.len())]);
        }
    }
    out
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{SizeRange, Strategy};
    use std::collections::BTreeSet;

    /// A `Vec` of values from `elem`, with length drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    /// A `BTreeSet` of values from `elem`, with target size drawn from
    /// `size` (possibly smaller when duplicates are generated, as in real
    /// proptest).
    pub fn btree_set<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            elem,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        pub(crate) elem: S,
        pub(crate) size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut super::StdRng) -> Self::Value {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        pub(crate) elem: S,
        pub(crate) size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut super::StdRng) -> Self::Value {
            let target = self.size.sample(rng);
            let mut out = BTreeSet::new();
            // Cap the attempts: small element domains may not support the
            // requested size, which real proptest also tolerates.
            for _ in 0..target.saturating_mul(4).max(8) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.elem.generate(rng));
            }
            out
        }
    }
}

/// A collection-size specification: an exact size or a (half-open /
/// inclusive) range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.lo..=self.hi_inclusive)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// The common imports (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// The property-test macro: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random, deterministically seeded
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let __base: u64 = $crate::__rt::seed_for(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    let mut __rng = <$crate::__rt::StdRng as $crate::__rt::SeedableRng>::seed_from_u64(
                        __base ^ (__case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    $(
                        let $arg = $crate::Strategy::generate(&($strat), &mut __rng);
                    )+
                    // `prop_assume!` skips the case by returning `None`;
                    // `prop_assert*` panic with the case number and inputs.
                    let __inputs = format!(
                        concat!("case #{} of ", stringify!($name), ": ", $( stringify!($arg), " = {:?}; ", )+),
                        __case, $( &$arg ),+
                    );
                    let __result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(move || {
                        let __run = move || -> ::core::result::Result<(), $crate::TestCaseReject> {
                            $body
                            ::core::result::Result::Ok(())
                        };
                        __run()
                    }));
                    match __result {
                        Ok(_) => {}
                        Err(payload) => {
                            eprintln!("proptest failure inputs: {}", __inputs);
                            ::std::panic::resume_unwind(payload);
                        }
                    }
                }
            }
        )*
    };
}

/// Assert inside a property (panics on failure; no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skip the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseReject);
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseReject);
        }
    };
}

/// Weighted (or unweighted) choice between strategies with a common value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $( (($weight) as u32, $crate::Strategy::boxed($strat)) ),+ ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $( (1u32, $crate::Strategy::boxed($strat)) ),+ ])
    };
}

#[cfg(test)]
mod tests {
    use super::__rt::{SeedableRng, StdRng};
    use super::prelude::*;
    use super::Strategy;

    #[test]
    fn pattern_strategy_matches_shape() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let s = "[A-Z][a-z]{0,3}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 4);
            assert!(s.chars().next().unwrap().is_ascii_uppercase());
            assert!(s.chars().skip(1).all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn collections_respect_sizes() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..50 {
            let v = super::collection::vec(0u32..5, 2..6).generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            let exact = super::collection::vec(any::<bool>(), 7usize).generate(&mut rng);
            assert_eq!(exact.len(), 7);
            let s = super::collection::btree_set(0usize..100, 3..=3usize).generate(&mut rng);
            assert!(s.len() <= 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_pipeline_works(x in 1usize..10, flag in any::<bool>(), v in super::collection::vec(0u32..4, 0..5)) {
            prop_assume!(x > 0);
            prop_assert!(x < 10);
            prop_assert_eq!(v.len() < 5, true);
            let _ = flag;
        }

        #[test]
        fn oneof_and_flat_map(y in (1usize..4).prop_flat_map(|n| prop_oneof![3 => Just(n), 1 => Just(n + 10)])) {
            prop_assert!(y < 4 || (11..14).contains(&y));
        }
    }
}
