//! Offline drop-in replacement for the subset of the `rand` 0.8 API this
//! workspace uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen`, `Rng::gen_range` and `Rng::gen_bool`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this minimal implementation as a path dependency. `StdRng` is a
//! SplitMix64 generator — not cryptographic, but statistically solid for the
//! Monte-Carlo estimators and property tests in this repository, and fully
//! deterministic for a given seed (which the prepared-query API relies on).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// The next uniform 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable RNGs (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Construct the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values samplable from the "standard" distribution (`Rng::gen`).
pub trait Standard: Sized {
    /// Draw one value from the standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by `Rng::gen_range`.
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// Draw a uniform element of the range.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as u128).wrapping_add(v) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as u128).wrapping_add(v) as $t
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// The user-facing RNG trait (blanket-implemented for every [`RngCore`]).
pub trait Rng: RngCore {
    /// Draw a value from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draw a uniform element of a range.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_range(self)
    }

    /// A Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic 64-bit SplitMix64 generator standing in for
    /// `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Pre-mix the seed so that consecutive seeds give unrelated
            // streams.
            let mut rng = StdRng {
                state: seed ^ 0x5DEE_CE66_D1CE_4E5B,
            };
            rng.next_u64();
            rng
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0..=4u32);
            assert!(w <= 4);
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn uniformish_distribution() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "bucket count {c} far from 1000");
        }
    }
}
