//! Inert derive macros for the offline `serde` shim: they accept the
//! `#[serde(...)]` helper attributes and expand to nothing.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
