//! The determinism contract of the parallel runtime.
//!
//! The `runtime` crate derives every RNG stream from `(engine seed,
//! work-item index)` instead of threading one sequential stream through the
//! loops, so for a fixed seed the estimates — FPRAS, FPTRAS, batch, and
//! sampling — must be **bit-identical** for 1, 2, and 8 threads, across all
//! three query classes of Figure 1.

use cqcount::prelude::*;
use cqcount::workloads::{
    erdos_renyi, footnote4_star_query, graph_database, path_query, star_query,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn snapshot(n: usize, avg_deg: f64, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = erdos_renyi(n, avg_deg / n as f64, &mut rng);
    graph_database(&g, "E", false)
}

/// One query per Figure 1 column: a plain CQ (FPRAS), a DCQ (FPTRAS) and an
/// ECQ (FPTRAS).
fn workload_queries() -> Vec<(QueryClass, Query)> {
    let cq = footnote4_star_query(2, false).query;
    let dcq = star_query(2, true).query;
    let ecq = path_query(2, false, true).query;
    assert_eq!(cq.class(), QueryClass::CQ);
    assert_eq!(dcq.class(), QueryClass::DCQ);
    assert_eq!(ecq.class(), QueryClass::ECQ);
    vec![
        (QueryClass::CQ, cq),
        (QueryClass::DCQ, dcq),
        (QueryClass::ECQ, ecq),
    ]
}

fn engine_with_threads(seed: u64, threads: usize) -> Engine {
    Engine::builder()
        .accuracy(0.25, 0.05)
        .seed(seed)
        .threads(threads)
        .build()
        .unwrap()
}

/// The pool matrix: estimates must be bit-identical across persistent
/// worker pools of width 1, 2 and 8 — and identical to the serial path —
/// for all three query classes of Figure 1. The pool (like the thread
/// count) may only change scheduling, never results: every RNG stream is
/// keyed by `(seed, work-item index)` and every estimate-feeding reduction
/// folds in index order. `COUNTING_POOL_WORKERS` applies the same widths
/// process-wide (CI runs a `COUNTING_POOL_WORKERS=1` leg); this in-process
/// matrix uses explicit pools so one run covers all three widths.
#[test]
fn pool_width_matrix_is_bit_identical_to_the_serial_path() {
    let dbs = [snapshot(11, 2.5, 0xA11CE), snapshot(13, 3.0, 0xB0B)];
    let pools: Vec<&'static Pool> = [1usize, 2, 8]
        .iter()
        .map(|&w| &*Box::leak(Box::new(Pool::new(w))))
        .collect();
    for (class, q) in workload_queries() {
        // the serial reference: one thread, no pool participation at all
        let serial: Vec<u64> = {
            let prepared = engine_with_threads(0xC0FFEE, 1).prepare(&q).unwrap();
            dbs.iter()
                .map(|db| prepared.count(db).unwrap().estimate.to_bits())
                .collect()
        };
        for &pool in &pools {
            let engine = Engine::builder()
                .accuracy(0.25, 0.05)
                .seed(0xC0FFEE)
                .threads(8)
                .worker_pool(pool)
                .build()
                .unwrap();
            let prepared = engine.prepare(&q).unwrap();
            for (db, &expect) in dbs.iter().zip(&serial) {
                let r = prepared.count(db).unwrap();
                assert_eq!(
                    r.estimate.to_bits(),
                    expect,
                    "{class:?}: pool width {} diverged from the serial path ({} vs {})",
                    pool.width(),
                    r.estimate,
                    f64::from_bits(expect)
                );
            }
            // batch evaluation must agree too (same contract, batch path)
            let batch = prepared.count_batch(&dbs).unwrap();
            for (r, &expect) in batch.iter().zip(&serial) {
                assert_eq!(
                    r.estimate.to_bits(),
                    expect,
                    "{class:?}: count_batch on pool width {} diverged",
                    pool.width()
                );
            }
        }
    }
}

/// Queries sampled from the enumerated workload grammar feed the same
/// contract: for each Figure-1 class, draw a seeded suite and check that
/// estimates are bit-identical across worker-pool widths {1, 2, 8} and
/// shard counts {1, 4}. The unsharded serial run is the reference;
/// `count_sharded` keys every item's RNG stream by `(seed, item index)`,
/// so neither the pool nor the shard assignment may move a single bit.
#[test]
fn grammar_sampled_queries_are_bit_identical_across_pools_and_shards() {
    use cqcount::workloads::{suite, suite_database};
    let dbs = [suite_database(0xD15C, 24), suite_database(0xD15C ^ 1, 30)];
    for class in [QueryClass::CQ, QueryClass::DCQ, QueryClass::ECQ] {
        let drawn = suite(class, 0x5EED5, 4);
        assert_eq!(drawn.queries.len(), 4, "{class:?} suite short");
        for sq in &drawn.queries {
            // reference: one thread, no pool, a single shard
            let reference: Vec<u64> = {
                let prepared = engine_with_threads(0xC0FFEE, 1).prepare(&sq.query).unwrap();
                count_sharded(&prepared, &dbs, 0xFEED, 1, Runtime::new(1))
                    .unwrap()
                    .iter()
                    .map(|r| r.estimate.to_bits())
                    .collect()
            };
            for width in [1usize, 2, 8] {
                let pool: &'static Pool = Box::leak(Box::new(Pool::new(width)));
                let engine = Engine::builder()
                    .accuracy(0.25, 0.05)
                    .seed(0xC0FFEE)
                    .threads(8)
                    .worker_pool(pool)
                    .build()
                    .unwrap();
                let prepared = engine.prepare(&sq.query).unwrap();
                for shards in [1usize, 4] {
                    let got =
                        count_sharded(&prepared, &dbs, 0xFEED, shards, Runtime::new(8)).unwrap();
                    for (r, &expect) in got.iter().zip(&reference) {
                        assert_eq!(
                            r.estimate.to_bits(),
                            expect,
                            "{class:?} {}: pool width {width}, {shards} shard(s) diverged \
                             ({} vs {})",
                            sq.name,
                            r.estimate,
                            f64::from_bits(expect)
                        );
                    }
                }
            }
        }
    }
}

/// Sampling through the pool matrix: the drawn answers (values and order)
/// must match the serial path for every pool width.
#[test]
fn pool_width_matrix_sampling_matches_serial() {
    let db = snapshot(12, 3.0, 0xFACADE);
    for (_, q) in workload_queries() {
        let reference = engine_with_threads(99, 1)
            .prepare(&q)
            .unwrap()
            .sample(&db, 5)
            .unwrap();
        for width in [1usize, 2, 8] {
            let pool: &'static Pool = Box::leak(Box::new(Pool::new(width)));
            let samples = Engine::builder()
                .accuracy(0.25, 0.05)
                .seed(99)
                .threads(8)
                .worker_pool(pool)
                .build()
                .unwrap()
                .prepare(&q)
                .unwrap()
                .sample(&db, 5)
                .unwrap();
            assert_eq!(samples, reference, "pool width {width}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// `PreparedQuery::count` returns bit-identical estimates on 1, 2 and 8
    /// threads, for every query class.
    #[test]
    fn count_is_bit_identical_across_thread_counts(seed in any::<u64>(), db_seed in any::<u64>()) {
        let dbs = [snapshot(10, 2.5, db_seed), snapshot(14, 3.0, db_seed ^ 0xA5A5)];
        for (class, q) in workload_queries() {
            let reference: Vec<u64> = {
                let prepared = engine_with_threads(seed, 1).prepare(&q).unwrap();
                dbs.iter().map(|db| prepared.count(db).unwrap().estimate.to_bits()).collect()
            };
            for threads in [2usize, 8] {
                let prepared = engine_with_threads(seed, threads).prepare(&q).unwrap();
                for (db, &expect) in dbs.iter().zip(&reference) {
                    let r = prepared.count(db).unwrap();
                    prop_assert_eq!(
                        r.estimate.to_bits(),
                        expect,
                        "{:?}: {} threads diverged ({} vs {})",
                        class,
                        threads,
                        r.estimate,
                        f64::from_bits(expect)
                    );
                    prop_assert_eq!(r.telemetry.threads_used, threads);
                }
            }
        }
    }

    /// The FPRAS *sampling* regime (Karp–Luby union trials) is also
    /// thread-count-invariant — forced by shrinking the exact-state budget
    /// to zero so the approximate counter always runs.
    #[test]
    fn fpras_sampling_regime_is_bit_identical(seed in any::<u64>(), db_seed in any::<u64>()) {
        let q = footnote4_star_query(2, false).query;
        let db = snapshot(12, 3.0, db_seed);
        let sampling_engine = |threads: usize| {
            Engine::builder()
                .accuracy(0.3, 0.1)
                .seed(seed)
                .threads(threads)
                .exact_state_budget(0)
                .build()
                .unwrap()
        };
        let reference = sampling_engine(1).prepare(&q).unwrap().count(&db).unwrap();
        prop_assert!(!reference.exact, "state budget 0 must force the sampling counter");
        for threads in [2usize, 8] {
            let r = sampling_engine(threads).prepare(&q).unwrap().count(&db).unwrap();
            prop_assert_eq!(
                r.estimate.to_bits(),
                reference.estimate.to_bits(),
                "{} threads diverged",
                threads
            );
        }
    }

    /// `count_batch` equals the serial fold of `count` — same order, same
    /// bits — for every thread count.
    #[test]
    fn count_batch_is_bit_identical_across_thread_counts(seed in any::<u64>(), db_seed in any::<u64>()) {
        let dbs = vec![
            snapshot(12, 2.5, db_seed),
            snapshot(9, 3.0, db_seed ^ 1),
            snapshot(15, 2.0, db_seed ^ 2),
            snapshot(11, 2.5, db_seed ^ 3),
        ];
        for (_, q) in workload_queries() {
            let serial: Vec<u64> = {
                let prepared = engine_with_threads(seed, 1).prepare(&q).unwrap();
                dbs.iter().map(|db| prepared.count(db).unwrap().estimate.to_bits()).collect()
            };
            for threads in [1usize, 2, 8] {
                let prepared = engine_with_threads(seed, threads).prepare(&q).unwrap();
                let batch = prepared.count_batch(&dbs).unwrap();
                prop_assert_eq!(batch.len(), dbs.len());
                for (r, &expect) in batch.iter().zip(&serial) {
                    prop_assert_eq!(r.estimate.to_bits(), expect, "{} threads", threads);
                }
            }
        }
    }

    /// Answer sampling draws the same answers in the same order for any
    /// thread count (the oracle's colour rounds parallelise inside each
    /// descent step).
    #[test]
    fn sampling_is_bit_identical_across_thread_counts(seed in any::<u64>()) {
        let db = snapshot(12, 3.0, seed ^ 0xBEEF);
        for (_, q) in workload_queries() {
            let reference = engine_with_threads(seed, 1)
                .prepare(&q)
                .unwrap()
                .sample(&db, 6)
                .unwrap();
            for threads in [2usize, 8] {
                let samples = engine_with_threads(seed, threads)
                    .prepare(&q)
                    .unwrap()
                    .sample(&db, 6)
                    .unwrap();
                prop_assert_eq!(&samples, &reference, "{} threads", threads);
            }
        }
    }
}
