//! The determinism contract of the parallel runtime.
//!
//! The `runtime` crate derives every RNG stream from `(engine seed,
//! work-item index)` instead of threading one sequential stream through the
//! loops, so for a fixed seed the estimates — FPRAS, FPTRAS, batch, and
//! sampling — must be **bit-identical** for 1, 2, and 8 threads, across all
//! three query classes of Figure 1.

use cqcount::prelude::*;
use cqcount::workloads::{
    erdos_renyi, footnote4_star_query, graph_database, path_query, star_query,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn snapshot(n: usize, avg_deg: f64, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = erdos_renyi(n, avg_deg / n as f64, &mut rng);
    graph_database(&g, "E", false)
}

/// One query per Figure 1 column: a plain CQ (FPRAS), a DCQ (FPTRAS) and an
/// ECQ (FPTRAS).
fn workload_queries() -> Vec<(QueryClass, Query)> {
    let cq = footnote4_star_query(2, false).query;
    let dcq = star_query(2, true).query;
    let ecq = path_query(2, false, true).query;
    assert_eq!(cq.class(), QueryClass::CQ);
    assert_eq!(dcq.class(), QueryClass::DCQ);
    assert_eq!(ecq.class(), QueryClass::ECQ);
    vec![
        (QueryClass::CQ, cq),
        (QueryClass::DCQ, dcq),
        (QueryClass::ECQ, ecq),
    ]
}

fn engine_with_threads(seed: u64, threads: usize) -> Engine {
    Engine::builder()
        .accuracy(0.25, 0.05)
        .seed(seed)
        .threads(threads)
        .build()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// `PreparedQuery::count` returns bit-identical estimates on 1, 2 and 8
    /// threads, for every query class.
    #[test]
    fn count_is_bit_identical_across_thread_counts(seed in any::<u64>(), db_seed in any::<u64>()) {
        let dbs = [snapshot(10, 2.5, db_seed), snapshot(14, 3.0, db_seed ^ 0xA5A5)];
        for (class, q) in workload_queries() {
            let reference: Vec<u64> = {
                let prepared = engine_with_threads(seed, 1).prepare(&q).unwrap();
                dbs.iter().map(|db| prepared.count(db).unwrap().estimate.to_bits()).collect()
            };
            for threads in [2usize, 8] {
                let prepared = engine_with_threads(seed, threads).prepare(&q).unwrap();
                for (db, &expect) in dbs.iter().zip(&reference) {
                    let r = prepared.count(db).unwrap();
                    prop_assert_eq!(
                        r.estimate.to_bits(),
                        expect,
                        "{:?}: {} threads diverged ({} vs {})",
                        class,
                        threads,
                        r.estimate,
                        f64::from_bits(expect)
                    );
                    prop_assert_eq!(r.telemetry.threads_used, threads);
                }
            }
        }
    }

    /// The FPRAS *sampling* regime (Karp–Luby union trials) is also
    /// thread-count-invariant — forced by shrinking the exact-state budget
    /// to zero so the approximate counter always runs.
    #[test]
    fn fpras_sampling_regime_is_bit_identical(seed in any::<u64>(), db_seed in any::<u64>()) {
        let q = footnote4_star_query(2, false).query;
        let db = snapshot(12, 3.0, db_seed);
        let sampling_engine = |threads: usize| {
            Engine::builder()
                .accuracy(0.3, 0.1)
                .seed(seed)
                .threads(threads)
                .exact_state_budget(0)
                .build()
                .unwrap()
        };
        let reference = sampling_engine(1).prepare(&q).unwrap().count(&db).unwrap();
        prop_assert!(!reference.exact, "state budget 0 must force the sampling counter");
        for threads in [2usize, 8] {
            let r = sampling_engine(threads).prepare(&q).unwrap().count(&db).unwrap();
            prop_assert_eq!(
                r.estimate.to_bits(),
                reference.estimate.to_bits(),
                "{} threads diverged",
                threads
            );
        }
    }

    /// `count_batch` equals the serial fold of `count` — same order, same
    /// bits — for every thread count.
    #[test]
    fn count_batch_is_bit_identical_across_thread_counts(seed in any::<u64>(), db_seed in any::<u64>()) {
        let dbs = vec![
            snapshot(12, 2.5, db_seed),
            snapshot(9, 3.0, db_seed ^ 1),
            snapshot(15, 2.0, db_seed ^ 2),
            snapshot(11, 2.5, db_seed ^ 3),
        ];
        for (_, q) in workload_queries() {
            let serial: Vec<u64> = {
                let prepared = engine_with_threads(seed, 1).prepare(&q).unwrap();
                dbs.iter().map(|db| prepared.count(db).unwrap().estimate.to_bits()).collect()
            };
            for threads in [1usize, 2, 8] {
                let prepared = engine_with_threads(seed, threads).prepare(&q).unwrap();
                let batch = prepared.count_batch(&dbs).unwrap();
                prop_assert_eq!(batch.len(), dbs.len());
                for (r, &expect) in batch.iter().zip(&serial) {
                    prop_assert_eq!(r.estimate.to_bits(), expect, "{} threads", threads);
                }
            }
        }
    }

    /// Answer sampling draws the same answers in the same order for any
    /// thread count (the oracle's colour rounds parallelise inside each
    /// descent step).
    #[test]
    fn sampling_is_bit_identical_across_thread_counts(seed in any::<u64>()) {
        let db = snapshot(12, 3.0, seed ^ 0xBEEF);
        for (_, q) in workload_queries() {
            let reference = engine_with_threads(seed, 1)
                .prepare(&q)
                .unwrap()
                .sample(&db, 6)
                .unwrap();
            for threads in [2usize, 8] {
                let samples = engine_with_threads(seed, threads)
                    .prepare(&q)
                    .unwrap()
                    .sample(&db, 6)
                    .unwrap();
                prop_assert_eq!(&samples, &reference, "{} threads", threads);
            }
        }
    }
}
