//! Plan-reuse guarantees of the `Engine` / `PreparedQuery` API.
//!
//! The contract the prepared-statement redesign rests on: for a fixed seed,
//! evaluating a *prepared* query must be bit-identical to the legacy
//! one-shot path — across query classes (CQ / DCQ / ECQ), databases, and
//! repeated evaluations — because both paths run the same data-side code
//! with the same RNG streams. Workloads come from `cqc-workloads`.

use cqcount::prelude::*;
use cqcount::workloads::{
    erdos_renyi, footnote4_star_query, graph_database, path_query, star_query,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn snapshot(n: usize, avg_deg: f64, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = erdos_renyi(n, avg_deg / n as f64, &mut rng);
    graph_database(&g, "E", false)
}

/// One query per Figure 1 column, all from the workload generators:
/// a plain CQ (FPRAS), a DCQ (FPTRAS) and an ECQ (FPTRAS).
fn workload_queries() -> Vec<(QueryClass, Query)> {
    let cq = footnote4_star_query(2, false).query;
    let dcq = star_query(2, true).query;
    let ecq = path_query(2, false, true).query;
    assert_eq!(cq.class(), QueryClass::CQ);
    assert_eq!(dcq.class(), QueryClass::DCQ);
    assert_eq!(ecq.class(), QueryClass::ECQ);
    vec![
        (QueryClass::CQ, cq),
        (QueryClass::DCQ, dcq),
        (QueryClass::ECQ, ecq),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `PreparedQuery::count` with a fixed seed returns bit-identical
    /// estimates to the one-shot path, for every query class and every
    /// database.
    #[test]
    fn prepared_count_is_bit_identical_to_one_shot(seed in any::<u64>(), db_seed in any::<u64>()) {
        let engine = Engine::builder().accuracy(0.25, 0.05).seed(seed).build().unwrap();
        let cfg = engine.config().clone();
        let dbs = [
            snapshot(10, 2.5, db_seed),
            snapshot(14, 3.0, db_seed ^ 0xA5A5),
            snapshot(18, 2.0, db_seed ^ 0x5A5A),
        ];
        for (class, q) in workload_queries() {
            let prepared = engine.prepare(&q).unwrap();
            for db in &dbs {
                let r = prepared.count(db).unwrap();
                let one_shot = approx_count_answers(&q, db, &cfg).unwrap();
                prop_assert_eq!(
                    r.estimate.to_bits(),
                    one_shot.estimate.to_bits(),
                    "{:?}: prepared {} vs one-shot {}",
                    class,
                    r.estimate,
                    one_shot.estimate
                );
                prop_assert_eq!(r.method, one_shot.method);
                // and the legacy per-scheme entry points agree too
                match r.method {
                    CountMethod::Fpras => prop_assert_eq!(
                        r.estimate.to_bits(),
                        fpras_count(&q, db, &cfg).unwrap().estimate.to_bits()
                    ),
                    CountMethod::Fptras => prop_assert_eq!(
                        r.estimate.to_bits(),
                        fptras_count(&q, db, &cfg).unwrap().estimate.to_bits()
                    ),
                    CountMethod::Exact => {}
                }
            }
        }
    }

    /// Re-counting with the same prepared plan is deterministic, and
    /// `count_batch` is exactly the fold of `count`.
    #[test]
    fn prepared_evaluation_is_deterministic(seed in any::<u64>(), db_seed in any::<u64>()) {
        let engine = Engine::builder().accuracy(0.3, 0.05).seed(seed).build().unwrap();
        let dbs = vec![
            snapshot(12, 2.5, db_seed),
            snapshot(9, 3.0, db_seed ^ 1),
            snapshot(15, 2.0, db_seed ^ 2),
        ];
        for (_, q) in workload_queries() {
            let prepared = engine.prepare(&q).unwrap();
            let batch = prepared.count_batch(&dbs).unwrap();
            prop_assert_eq!(batch.len(), dbs.len());
            for (db, r) in dbs.iter().zip(&batch) {
                let again = prepared.count(db).unwrap();
                prop_assert_eq!(r.estimate.to_bits(), again.estimate.to_bits());
            }
        }
    }

    /// Prepared sampling equals one-shot sampling for the same seed.
    #[test]
    fn prepared_sampling_is_bit_identical_to_one_shot(seed in any::<u64>()) {
        let engine = Engine::builder().accuracy(0.3, 0.05).seed(seed).build().unwrap();
        let cfg = engine.config().clone();
        let db = snapshot(12, 3.0, seed ^ 0xBEEF);
        for (_, q) in workload_queries() {
            let prepared = engine.prepare(&q).unwrap();
            let a = prepared.sample(&db, 6).unwrap();
            let b = sample_answers(&q, &db, 6, &cfg).unwrap();
            prop_assert_eq!(a, b);
        }
    }
}

/// The estimates the prepared path returns are not just self-consistent but
/// accurate: spot-check against the exact baseline on fixed instances.
#[test]
fn prepared_estimates_track_the_exact_count() {
    let engine = Engine::builder()
        .accuracy(0.2, 0.02)
        .seed(99)
        .build()
        .unwrap();
    for (_, q) in workload_queries() {
        let prepared = engine.prepare(&q).unwrap();
        for s in 0..3u64 {
            let db = snapshot(12, 3.0, 7 + s);
            let truth = exact_count_answers(&q, &db) as f64;
            let r = prepared.count(&db).unwrap();
            assert!(
                (r.estimate - truth).abs() <= 0.5 * truth.max(1.0),
                "{}: estimate {} vs exact {}",
                q,
                r.estimate,
                truth
            );
        }
    }
}
