//! `cqc audit` end to end through the library entry point: exit codes
//! 0/1/2, stable diagnostic formatting (golden), workspace-relative
//! paths, and the always-written JSON artifact.

use cqc_cli::{exit_code, run, CliError};
use std::path::PathBuf;

fn workspace_root() -> &'static str {
    env!("CARGO_MANIFEST_DIR")
}

fn run_args(args: &[&str]) -> Result<String, CliError> {
    let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    run(&argv)
}

fn check_golden(name: &str, actual: &str) {
    let path = format!("{}/tests/golden/{name}", workspace_root());
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {path} ({e}); run with UPDATE_GOLDEN=1"));
    assert_eq!(
        actual, expected,
        "`{name}` drifted from its golden file; if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

/// A fixed scratch workspace with one seeded violation per rule family,
/// so the diagnostic text (and its ordering) can be pinned by a golden.
fn seeded_tree(name: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("cqc-audit-cli-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let files: [(&str, &str); 4] = [
        ("Cargo.toml", "[workspace]\n"),
        (
            "crates/data/src/lib.rs",
            "#![forbid(unsafe_code)]\n\
             use std::collections::HashMap;\n\
             pub fn f(m: &HashMap<u32, u32>) -> u32 {\n    \
                 let mut acc = 0;\n    \
                 for (_k, v) in m {\n        \
                     acc += v;\n    \
                 }\n    \
                 acc\n\
             }\n",
        ),
        (
            "crates/net/src/lib.rs",
            "#![forbid(unsafe_code)]\npub mod server;\n",
        ),
        (
            "crates/net/src/server.rs",
            "pub fn handle(line: &str) -> u64 {\n    line.trim().parse().unwrap()\n}\n",
        ),
    ];
    for (rel, contents) in files {
        let path = root.join(rel);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, contents).unwrap();
    }
    std::fs::create_dir_all(root.join("tests/golden")).unwrap();
    std::fs::write(root.join("tests/golden/unsafe_inventory.txt"), "\n").unwrap();
    root
}

#[test]
fn clean_workspace_exits_zero() {
    let result = run_args(&["audit", "--root", workspace_root()]);
    assert_eq!(exit_code(&result), 0, "{result:?}");
    let out = result.unwrap();
    assert!(out.contains("cqc audit: clean"), "{out}");
}

#[test]
fn violations_exit_one_with_stable_diagnostics() {
    let root = seeded_tree("diag");
    let result = run_args(&["audit", "--root", root.to_str().unwrap()]);
    assert_eq!(exit_code(&result), 1, "{result:?}");
    let report = match result {
        Err(CliError::Audit(report)) => report,
        other => panic!("expected CliError::Audit, got {other:?}"),
    };
    // Paths are relative to the audited root, with `file:line:` prefixes.
    check_golden("audit_violations.txt", &report);
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn usage_errors_exit_two() {
    let result = run_args(&["audit", "--format", "yaml"]);
    assert_eq!(exit_code(&result), 2, "{result:?}");
    let root = std::env::temp_dir().join(format!("cqc-audit-cli-noroot-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).unwrap();
    let result = run_args(&["audit", "--root", root.to_str().unwrap()]);
    assert_eq!(exit_code(&result), 2, "{result:?}");
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn json_artifact_is_written_even_on_failure() {
    let root = seeded_tree("artifact");
    let out = root.join("AUDIT_report.json");
    let result = run_args(&[
        "audit",
        "--root",
        root.to_str().unwrap(),
        "--format",
        "json",
        "--out",
        out.to_str().unwrap(),
    ]);
    assert_eq!(exit_code(&result), 1);
    let artifact = std::fs::read_to_string(&out).expect("artifact written on failure");
    assert!(artifact.contains("\"clean\": false"), "{artifact}");
    assert!(artifact.contains("hash-iter"), "{artifact}");
    // The stdout payload (the Audit error) carries the same JSON.
    match result {
        Err(CliError::Audit(report)) => assert_eq!(report, artifact),
        other => panic!("expected CliError::Audit, got {other:?}"),
    }
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn json_report_is_valid_enough_for_ci() {
    let result = run_args(&["audit", "--root", workspace_root(), "--format", "json"]);
    let out = result.expect("clean tree");
    assert!(out.trim_start().starts_with('{'), "{out}");
    assert!(out.contains("\"tool\": \"cqc-audit\""), "{out}");
    assert!(out.contains("\"clean\": true"), "{out}");
}
