//! Allocation accounting for the `count_batch` per-thread scratch.
//!
//! `PreparedQuery::count_batch` gives each worker thread one `EvalScratch`
//! that is reused across every database the worker evaluates (the `Hom`
//! decider plus the cached relaxation colouring — see the invariant
//! documented on `EvalScratch`). This test pins the promised effect with a
//! counting global allocator: a single-threaded batch over K databases must
//! allocate strictly less than K independent `count` calls, while returning
//! bit-identical estimates.

use cqcount::prelude::*;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations_of<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let out = f();
    (out, ALLOCATIONS.load(Ordering::Relaxed) - before)
}

fn network(n: usize, edges: &[(u32, u32)]) -> Database {
    let mut b = StructureBuilder::new(n);
    b.relation("E", 2);
    for &(u, v) in edges {
        b.fact("E", &[u, v]).unwrap();
    }
    b.build()
}

/// Same-universe snapshots, the shape of a typical batch workload (time
/// series of one evolving database).
fn snapshots() -> Vec<Database> {
    let base = [(0, 1), (0, 2), (1, 3), (3, 0), (3, 4), (4, 5)];
    (0..6u32)
        .map(|i| {
            let mut edges = base.to_vec();
            edges.push((i % 6, (i + 2) % 6));
            edges.push(((i + 3) % 6, i % 6));
            network(6, &edges)
        })
        .collect()
}

#[test]
fn batch_scratch_allocates_less_than_independent_counts() {
    let engine = Engine::builder()
        .accuracy(0.3, 0.05)
        .seed(7)
        .threads(1) // single-threaded so the comparison is alloc-for-alloc
        .build()
        .unwrap();
    let q = parse_query("ans(x) :- E(x, y), E(x, z), y != z").unwrap();
    let prepared = engine.prepare(&q).unwrap();
    let dbs = snapshots();

    // warm up lazily built plan state so both measurements see a hot plan
    let _ = prepared.count(&dbs[0]).unwrap();

    let (individual, individual_allocs) = allocations_of(|| {
        dbs.iter()
            .map(|db| prepared.count(db).unwrap())
            .collect::<Vec<_>>()
    });
    let (batch, batch_allocs) = allocations_of(|| prepared.count_batch(&dbs).unwrap());

    for (a, b) in individual.iter().zip(&batch) {
        assert_eq!(a.estimate.to_bits(), b.estimate.to_bits());
    }
    assert!(
        batch_allocs < individual_allocs,
        "batch ({batch_allocs} allocations) must reuse its per-thread scratch and \
         allocate less than {} independent counts ({individual_allocs} allocations)",
        dbs.len()
    );
}
