//! End-to-end integration tests exercising the public facade across crates:
//! the paper's running examples, the dichotomy dispatch of Figure 1, and the
//! agreement of every counting path with the exact baseline.

use cqcount::prelude::*;
use cqcount::workloads::{erdos_renyi, footnote4_star_query, graph_database, star_query};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_random_db(n: usize, avg_deg: f64, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = erdos_renyi(n, avg_deg / n as f64, &mut rng);
    graph_database(&g, "E", false)
}

#[test]
fn figure1_dispatch_and_accuracy() {
    let db = small_random_db(25, 3.0, 1);
    let cfg = ApproxConfig::new(0.25, 0.05).with_seed(1);

    // CQ → FPRAS
    let cq = parse_query("ans(x, y) :- E(x, z), E(z, y)").unwrap();
    let r = approx_count_answers(&cq, &db, &cfg).unwrap();
    assert_eq!(r.method, CountMethod::Fpras);
    let truth = exact_count_answers(&cq, &db) as f64;
    assert!((r.estimate - truth).abs() <= 0.3 * truth.max(1.0));

    // DCQ → FPTRAS
    let dcq = parse_query("ans(x) :- E(x, y), E(x, z), y != z").unwrap();
    let r = approx_count_answers(&dcq, &db, &cfg).unwrap();
    assert_eq!(r.method, CountMethod::Fptras);
    let truth = exact_count_answers(&dcq, &db) as f64;
    assert!((r.estimate - truth).abs() <= 0.3 * truth.max(1.0));

    // ECQ → FPTRAS
    let ecq = parse_query("ans(x, y) :- E(x, y), !E(y, x)").unwrap();
    let r = approx_count_answers(&ecq, &db, &cfg).unwrap();
    assert_eq!(r.method, CountMethod::Fptras);
    let truth = exact_count_answers(&ecq, &db) as f64;
    assert!((r.estimate - truth).abs() <= 0.3 * truth.max(1.0));
}

#[test]
fn paper_query_1_on_a_social_network() {
    // equation (1): persons with at least two distinct friends
    let mut b = StructureBuilder::new(6);
    b.relation("F", 2);
    for (u, v) in [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (3, 5), (5, 0)] {
        b.fact("F", &[u, v]).unwrap();
    }
    let db = b.build();
    let q = parse_query("ans(x) :- F(x, y), F(x, z), y != z").unwrap();
    assert_eq!(q.class(), QueryClass::DCQ);
    let truth = exact_count_answers(&q, &db) as f64;
    assert_eq!(truth, 2.0); // persons 0 and 3
    let cfg = ApproxConfig::new(0.2, 0.05).with_seed(3);
    let r = fptras_count(&q, &db, &cfg).unwrap();
    assert!((r.estimate - truth).abs() <= 0.25 * truth);
    // sampling returns only actual answers
    let samples = sample_answers(&q, &db, 20, &cfg).unwrap();
    for s in samples {
        assert!(s[0] == Val(0) || s[0] == Val(3));
    }
}

#[test]
fn fpras_and_fptras_agree_on_plain_cqs() {
    // Both counting pipelines must agree with the exact baseline on plain CQs.
    // The FPTRAS cost grows quickly with the number of free variables (its
    // edge counter works over an ℓ-partite hypergraph with ℓ·|U(D)| vertices),
    // so the k = 3 star is checked on a smaller database than the k = 2 star.
    let cfg = ApproxConfig::new(0.25, 0.1).with_seed(5);
    let cases = [
        (footnote4_star_query(2, false), small_random_db(20, 4.0, 5)),
        (footnote4_star_query(3, false), small_random_db(9, 2.5, 5)),
    ];
    for (spec, db) in cases {
        let truth = exact_count_answers(&spec.query, &db) as f64;
        let fpras = fpras_count(&spec.query, &db, &cfg).unwrap().estimate;
        let fptras = fptras_count(&spec.query, &db, &cfg).unwrap().estimate;
        assert!(
            (fpras - truth).abs() <= 0.3 * truth.max(1.0),
            "{}: fpras {} truth {}",
            spec.name,
            fpras,
            truth
        );
        assert!(
            (fptras - truth).abs() <= 0.3 * truth.max(1.0),
            "{}: fptras {} truth {}",
            spec.name,
            fptras,
            truth
        );
    }
}

#[test]
fn hamiltonian_paths_observation_10() {
    let q = hamiltonian_path_query(4);
    let k4 = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
    let db = undirected_graph_database(4, &k4);
    assert_eq!(exact_count_answers(&q, &db), 24);
    // the query hypergraph stays a path despite the quadratic disequalities
    let h = cqcount::query::query_hypergraph(&q);
    assert_eq!(cqcount::hypergraph::treewidth::treewidth_exact(&h).0, 1);
}

#[test]
fn locally_injective_homomorphisms_corollary_6() {
    use cqcount::core::lihom::PatternGraph;
    let pattern = PatternGraph::star(2);
    let host_edges = [(0, 1), (1, 2), (2, 3), (3, 0)];
    let q = cqcount::core::locally_injective_query(&pattern);
    let db = cqcount::core::lihom::host_graph_database(4, &host_edges);
    // every vertex of C4 has exactly 2 distinct neighbours: 4 · 2 = 8
    assert_eq!(exact_count_answers(&q, &db), 8);
    let cfg = ApproxConfig::new(0.25, 0.05).with_seed(6);
    let r = count_locally_injective_homomorphisms(&pattern, 4, &host_edges, &cfg).unwrap();
    assert!((r.estimate - 8.0).abs() <= 2.0);
}

#[test]
fn union_counting_section_6() {
    let db = small_random_db(15, 3.0, 7);
    let q1 = parse_query("ans(x, y) :- E(x, y)").unwrap();
    let q2 = parse_query("ans(x, y) :- E(y, x)").unwrap();
    let queries = vec![q1.clone(), q2.clone()];
    let mut all = std::collections::BTreeSet::new();
    for q in &queries {
        all.extend(cqcount::query::enumerate_answers(q, &db));
    }
    let truth = all.len() as f64;
    let cfg = ApproxConfig::new(0.2, 0.1).with_seed(7);
    let est = count_union(&queries, &db, 400, &cfg).unwrap();
    assert!(
        (est - truth).abs() <= 0.3 * truth.max(1.0),
        "union estimate {est} vs {truth}"
    );
}

#[test]
fn star_query_scaling_smoke_test() {
    // a slightly larger instance to make sure nothing degrades pathologically
    let db = small_random_db(60, 3.0, 9);
    let spec = star_query(2, true);
    let truth = exact_count_answers(&spec.query, &db) as f64;
    let cfg = ApproxConfig::new(0.3, 0.1).with_seed(9);
    let r = fptras_count(&spec.query, &db, &cfg).unwrap();
    assert!(
        (r.estimate - truth).abs() <= 0.35 * truth.max(1.0),
        "estimate {} truth {}",
        r.estimate,
        truth
    );
}

// ---------------------------------------------------------------------------
// Golden-file CLI tests: the full stdout of `cqc count` / `cqc sample` /
// `cqc serve` is pinned against files under tests/golden/, so any output
// drift — estimates, dispatch lines, the `threads=` amortised summary, the
// serve response format — fails loudly. Wall-clock numbers are the only
// nondeterministic part and are normalised to `<T>`. Regenerate with
// `UPDATE_GOLDEN=1 cargo test --test end_to_end`.
// ---------------------------------------------------------------------------

/// Replace every `<float> ms` occurrence with `<T> ms` (wall times are the
/// only nondeterministic bytes in the pinned outputs).
fn normalize_times(out: &str) -> String {
    let mut text = String::with_capacity(out.len());
    let mut rest = out;
    while let Some(pos) = rest.find(" ms") {
        let (before, after) = rest.split_at(pos);
        let num_start = before
            .rfind(|c: char| !(c.is_ascii_digit() || c == '.'))
            .map(|i| i + 1)
            .unwrap_or(0);
        if num_start < before.len() && before[num_start..].contains(|c: char| c.is_ascii_digit()) {
            text.push_str(&before[..num_start]);
            text.push_str("<T>");
        } else {
            text.push_str(before);
        }
        text.push_str(" ms");
        rest = &after[3..];
    }
    text.push_str(rest);
    text
}

fn check_golden(name: &str, actual: &str) {
    let path = format!("tests/golden/{name}");
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {path} ({e}); run with UPDATE_GOLDEN=1"));
    assert_eq!(
        actual, expected,
        "`{name}` drifted from its golden file; if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

fn run_cli(args: &[&str]) -> String {
    let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    cqc_cli::run(&argv).expect("cli run succeeds")
}

#[test]
fn golden_count_single_database() {
    let out = run_cli(&[
        "count",
        "--db",
        "tests/data/friends.facts",
        "--query",
        "ans(x) :- E(x, y), E(x, z), y != z",
        "--epsilon",
        "0.2",
        "--seed",
        "7",
        "--threads",
        "2",
    ]);
    check_golden("count_friends.txt", &normalize_times(&out));
}

#[test]
fn golden_count_amortised_multi_db_pins_threads_summary() {
    let out = run_cli(&[
        "count",
        "--db",
        "tests/data/friends.facts",
        "tests/data/friends2.facts",
        "--query",
        "ans(x) :- E(x, y), E(x, z), y != z",
        "--repeat",
        "3",
        "--seed",
        "9",
        "--threads",
        "2",
    ]);
    let normalized = normalize_times(&out);
    // the amortised summary (with its scrapeable threads= field) must
    // survive normalisation verbatim apart from the wall times
    assert!(
        normalized.contains("plan reused, threads=2"),
        "{normalized}"
    );
    assert!(
        normalized.contains("6 run(s) in <T> ms total"),
        "{normalized}"
    );
    check_golden("count_amortised.txt", &normalized);
}

#[test]
fn golden_sample_output_is_fully_deterministic() {
    let out = run_cli(&[
        "sample",
        "--db",
        "tests/data/friends.facts",
        "--query",
        "ans(x) :- E(x, y), E(x, z), y != z",
        "--count",
        "6",
        "--seed",
        "3",
        "--threads",
        "2",
    ]);
    // sampling output carries no wall times: pin it byte-for-byte
    check_golden("sample_friends.txt", &out);
}

#[test]
fn golden_serve_response_lines() {
    let requests = "tests/data/serve_requests.jsonl";
    let out = run_cli(&["serve", "--requests", requests, "--shards", "2"]);
    check_golden("serve_responses.txt", &out);
}

#[test]
fn normalize_times_only_touches_wall_times() {
    let s = "planned in  : 0.123 ms\nestimate    : 2\nevaluated   : 6 run(s) in 1.5 ms total (0.25 ms/run, plan reused, threads=2)\n";
    let n = normalize_times(s);
    assert_eq!(
        n,
        "planned in  : <T> ms\nestimate    : 2\nevaluated   : 6 run(s) in <T> ms total (<T> ms/run, plan reused, threads=2)\n"
    );
    // idempotent and stable on time-free text
    assert_eq!(normalize_times(&n), n);
    assert_eq!(normalize_times("estimate : 2\n"), "estimate : 2\n");
}

#[test]
fn naive_monte_carlo_baseline_runs() {
    let db = small_random_db(20, 3.0, 11);
    let q = parse_query("ans(x, y) :- E(x, y)").unwrap();
    let mut rng = StdRng::seed_from_u64(11);
    let truth = exact_count_answers(&q, &db) as f64;
    let est = naive_monte_carlo(&q, &db, 30_000, &mut rng);
    assert!((est - truth).abs() <= 0.25 * truth.max(1.0));
}
