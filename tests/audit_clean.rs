//! The audit gate: `cqc-audit` must report the live tree clean, the
//! `unsafe` inventory must match its golden file, and the waiver
//! population may only change through a deliberate re-bless
//! (`UPDATE_GOLDEN=1 cargo test --test audit_clean`).

use cqc_audit::engine::render_unsafe_inventory;
use cqc_audit::{audit, AuditReport};
use std::path::Path;

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

fn run_audit() -> AuditReport {
    audit(workspace_root()).expect("audit walks the workspace")
}

fn check_golden(name: &str, actual: &str) {
    let path = workspace_root().join("tests/golden").join(name);
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "`{name}` drifted from its golden file; if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

/// The acceptance gate: zero unwaived violations across the workspace.
#[test]
fn live_tree_is_audit_clean() {
    let report = run_audit();
    assert!(
        report.is_clean(),
        "cqc audit found unwaived violations:\n{}",
        cqc_audit::render_text(&report)
    );
    // Sanity: the audit actually looked at the tree.
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned: {}",
        report.files_scanned
    );
}

/// The golden `unsafe` inventory: any new `unsafe` region anywhere in the
/// workspace fails this test until the inventory is deliberately re-blessed.
#[test]
fn unsafe_inventory_matches_golden() {
    let report = run_audit();
    let rendered = render_unsafe_inventory(&report.unsafe_inventory);
    check_golden("unsafe_inventory.txt", &rendered);
    // The inventory itself is pinned: exactly two files may contain
    // `unsafe` — the net layer's poll(2) shim and the pool's scoped-borrow
    // cell (the inventory renders sorted by path).
    assert_eq!(
        report.unsafe_inventory.len(),
        2,
        "unsafe appeared outside the fenced modules: {:?}",
        report.unsafe_inventory
    );
    assert_eq!(report.unsafe_inventory[0].file, "crates/net/src/poll.rs");
    assert_eq!(
        report.unsafe_inventory[1].file,
        "crates/runtime/src/pool.rs"
    );
}

/// Every crate root must gate unsafe code: `forbid(unsafe_code)`
/// everywhere, except the two fenced crates — the runtime (pool borrow
/// erasure) and net (the poll(2) shim) — whose roots carry `deny` with the
/// allowance scoped to the one module that needs it.
#[test]
fn every_crate_root_gates_unsafe() {
    let crates_dir = workspace_root().join("crates");
    let mut roots = vec![(workspace_root().join("src/lib.rs"), "cqcount".to_string())];
    for entry in std::fs::read_dir(&crates_dir).unwrap() {
        let dir = entry.unwrap().path();
        let lib = dir.join("src/lib.rs");
        if lib.is_file() {
            let name = dir.file_name().unwrap().to_string_lossy().into_owned();
            roots.push((lib, name));
        }
    }
    assert!(roots.len() > 5, "expected a workspace full of crates");
    for (lib, name) in roots {
        let src = std::fs::read_to_string(&lib).unwrap();
        if name == "runtime" || name == "net" {
            assert!(
                src.contains("#![deny(unsafe_code)]"),
                "crates/{name}/src/lib.rs must carry #![deny(unsafe_code)]"
            );
        } else {
            assert!(
                src.contains("#![forbid(unsafe_code)]"),
                "{name}: crate root must carry #![forbid(unsafe_code)]"
            );
        }
    }
}

/// The waiver population is part of the reviewed surface: per-rule counts
/// are pinned by a golden file, so a PR that adds a waiver has to re-bless
/// (and thereby show the new waiver to review).
#[test]
fn waiver_counts_match_golden() {
    let report = run_audit();
    let mut counts: std::collections::BTreeMap<&'static str, usize> = Default::default();
    for w in &report.waived {
        *counts.entry(w.rule.name()).or_insert(0) += 1;
    }
    let mut out = String::from(
        "# Waivers silencing cqc-audit findings, counted per rule.\n\
         # Adding a waiver requires re-blessing:\n\
         # UPDATE_GOLDEN=1 cargo test --test audit_clean\n",
    );
    for (rule, n) in &counts {
        out.push_str(&format!("{rule} {n}\n"));
    }
    check_golden("audit_waivers.txt", &out);
}

/// Every waiver must carry a written reason (the engine enforces this at
/// parse time; assert it end to end so the contract is visible here).
#[test]
fn every_waiver_carries_a_reason() {
    let report = run_audit();
    assert!(
        !report.waived.is_empty(),
        "expected some waivers in the tree"
    );
    for w in &report.waived {
        assert!(
            !w.reason.trim().is_empty(),
            "waiver without a reason at {}:{}",
            w.file,
            w.line
        );
    }
}
