//! Golden pin of the enumerated workload suites (ISSUE 8, satellite 3).
//!
//! `tests/golden/workload_suites.txt` holds the `cqc suite manifest`
//! output for the committed manifest seed: per-class enumeration sizes
//! and the sampled query texts. Any change to the grammar, the class
//! filters, the canonicalisation, or the sampler moves this file — which
//! is exactly the point: the suites feed benchmarks whose numbers are
//! committed (`BENCH_workloads.json`), so their membership must not
//! drift silently. Regenerate deliberately with
//! `UPDATE_GOLDEN=1 cargo test --test workload_golden`.

use cqcount::workloads::{enumerate_class, manifest, ALL_CLASSES};

fn check_golden(name: &str, actual: &str) {
    let path = format!("tests/golden/{name}");
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {path} ({e}); run with UPDATE_GOLDEN=1"));
    assert_eq!(
        actual, expected,
        "`{name}` drifted from its golden file; if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn golden_workload_suite_manifest() {
    // the library manifest at the committed seed is the golden text…
    let text = manifest(0xC0FFEE, 8);
    check_golden("workload_suites.txt", &text);

    // …and `cqc suite manifest` (no flags) must print exactly that, so
    // the CI leg can diff the binary's output against the committed file
    let out = cqc_cli::run(&["suite".to_string(), "manifest".to_string()])
        .expect("cqc suite manifest succeeds");
    assert_eq!(
        out, text,
        "`cqc suite manifest` drifted from the library manifest"
    );
}

#[test]
fn golden_manifest_covers_every_class_with_real_counts() {
    // under UPDATE_GOLDEN the file may be mid-rewrite by the other test;
    // check the freshly generated text instead (they are asserted equal)
    let text = if std::env::var("UPDATE_GOLDEN").is_ok() {
        manifest(0xC0FFEE, 8)
    } else {
        std::fs::read_to_string("tests/golden/workload_suites.txt")
            .expect("golden manifest is committed")
    };
    for class in ALL_CLASSES {
        let family = enumerate_class(class);
        let name = match class {
            cqcount::query::QueryClass::CQ => "CQ",
            cqcount::query::QueryClass::DCQ => "DCQ",
            cqcount::query::QueryClass::ECQ => "ECQ",
        };
        let marker = format!("class {name}: enumerated={} sampled=8", family.len());
        assert!(
            text.contains(&marker),
            "golden manifest lost `{marker}`; enumeration counts changed"
        );
    }
}
