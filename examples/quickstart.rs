//! Quick start: count the answers of the paper's running example query (1)
//! on a small social network, comparing the exact count, the FPTRAS estimate
//! and a uniform sample of answers.
//!
//! Run with `cargo run --release --example quickstart`.

use cqcount::prelude::*;

fn main() {
    // Build a small "friendship" database. F(a, b) = "a lists b as a friend".
    let people = ["ada", "bob", "cho", "dee", "eli", "fay"];
    let mut b = StructureBuilder::new(people.len());
    b.relation("F", 2);
    b.element_names(&people);
    for (u, v) in [
        (0, 1),
        (0, 2),
        (1, 2),
        (2, 3),
        (3, 4),
        (3, 5),
        (4, 0),
        (5, 0),
    ] {
        b.fact("F", &[u, v]).unwrap();
    }
    let db = b.build();
    println!("{db}");

    // ϕ(x) = ∃y ∃z F(x,y) ∧ F(x,z) ∧ y ≠ z — "x has at least two distinct friends"
    let q = parse_query("ans(x) :- F(x, y), F(x, z), y != z").unwrap();
    println!("query: {q}   (class {:?}, ‖ϕ‖ = {})", q.class(), q.size());

    let exact = exact_count_answers(&q, &db);
    println!("exact count:      {exact}");

    // Prepare the query once, then count and sample from the same plan.
    let engine = Engine::builder()
        .accuracy(0.2, 0.05)
        .seed(42)
        .build()
        .unwrap();
    let prepared = engine.prepare(&q).unwrap();
    let est = prepared.count(&db).unwrap();
    println!(
        "approx count:     {:.1}   (method {}, exact? {})",
        est.estimate, est.method, est.exact
    );

    let samples = prepared.sample(&db, 5).unwrap();
    let names: Vec<&str> = samples.iter().map(|t| people[t[0].index()]).collect();
    println!("sampled answers:  {names:?}");
}
