//! The width-measure hierarchy of Lemma 12 / Observation 34 on concrete
//! query hypergraphs, and what it implies for which algorithm applies
//! (Figure 1 of the paper).
//!
//! Run with `cargo run --release --example width_measures`.

use cqcount::hypergraph::adaptive::adaptive_width_bounds;
use cqcount::hypergraph::fwidth::{minimise_width, WidthMeasure};
use cqcount::hypergraph::treewidth::treewidth_exact;
use cqcount::prelude::*;
use cqcount::query::query_hypergraph;
use cqcount::workloads::{clique_query, footnote4_star_query, hyperchain_query, path_query};

fn main() {
    let queries: Vec<(String, Query)> = vec![
        ("path, k=3, with ≠".into(), path_query(3, true, false).query),
        (
            "footnote-4 star, k=4".into(),
            footnote4_star_query(4, false).query,
        ),
        ("clique k=4".into(), clique_query(4, true).query),
        ("ternary hyperchain".into(), hyperchain_query(3, true).query),
        ("hamiltonian n=5".into(), hamiltonian_path_query(5)),
    ];
    println!(
        "{:24} {:>4} {:>6} {:>6} {:>14}  algorithm (Figure 1)",
        "query", "tw", "hw", "fhw", "aw lo..hi"
    );
    for (name, q) in queries {
        let h = query_hypergraph(&q);
        let tw = treewidth_exact(&h).0;
        let (hw, _) = minimise_width(&h, WidthMeasure::Hypertreewidth);
        let (fhw, _) = minimise_width(&h, WidthMeasure::FractionalHypertreewidth);
        let aw = adaptive_width_bounds(&h, 1);
        let algorithm = match q.class() {
            QueryClass::CQ => "FPRAS (Thm 16) — bounded fhw",
            QueryClass::DCQ => "FPTRAS (Thm 5/13) — no FPRAS (Obs 10)",
            QueryClass::ECQ => "FPTRAS (Thm 5) — bounded tw & arity",
        };
        println!(
            "{name:24} {tw:>4} {hw:>6.1} {fhw:>6.2} {:>6.2}..{:<6.2}  {algorithm}",
            aw.lower, aw.upper
        );
    }
}
