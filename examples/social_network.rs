//! A larger, domain-flavoured scenario: approximate analytics over a synthetic
//! social network with follower and block relations, exercising disequalities
//! and negations (the full ECQ language) plus the CQ-only FPRAS.
//!
//! Run with `cargo run --release --example social_network`.

use cqcount::prelude::*;
use cqcount::workloads::{erdos_renyi, graph_database};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 80;
    let mut rng = StdRng::seed_from_u64(7);
    let follows = erdos_renyi(n, 6.0 / n as f64, &mut rng);
    let blocks = erdos_renyi(n, 1.5 / n as f64, &mut rng);

    // One database with two binary relations.
    let mut b = StructureBuilder::new(n);
    b.relation("Follows", 2);
    b.relation("Blocks", 2);
    for (u, v) in &follows.edges {
        b.fact("Follows", &[*u as u32, *v as u32]).unwrap();
    }
    for (u, v) in &blocks.edges {
        b.fact("Blocks", &[*u as u32, *v as u32]).unwrap();
    }
    let db = b.build();
    // A second, single-relation view used by the CQ/FPRAS demo below.
    let follows_db = graph_database(&follows, "Follows", false);

    let cfg = ApproxConfig::new(0.25, 0.05).with_seed(1);

    // 1. "Influencers": users followed by two distinct users who do not block them.
    let influencers =
        parse_query("ans(x) :- Follows(y, x), Follows(z, x), y != z, !Blocks(y, x), !Blocks(z, x)")
            .unwrap();
    report("influencers (ECQ, FPTRAS)", &influencers, &db, &cfg);

    // 2. "Mutuals": ordered pairs following each other.
    let mutuals = parse_query("ans(x, y) :- Follows(x, y), Follows(y, x)").unwrap();
    report("mutual followers (CQ, FPRAS)", &mutuals, &follows_db, &cfg);

    // 3. "Reach-2": pairs connected by a directed path of length 2 (existential midpoint).
    let reach2 = parse_query("ans(x, y) :- Follows(x, m), Follows(m, y)").unwrap();
    report("2-step reach (CQ, FPRAS)", &reach2, &follows_db, &cfg);
}

fn report(name: &str, q: &Query, db: &Database, cfg: &ApproxConfig) {
    let exact = exact_count_answers(q, db);
    let est = approx_count_answers(q, db, cfg).unwrap();
    println!(
        "{name:35}  exact = {exact:6}   estimate = {:8.1}   method = {:?}",
        est.estimate, est.method
    );
}
