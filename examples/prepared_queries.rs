//! Plan once, count many: the `Engine` / `PreparedQuery` API.
//!
//! Prepares the paper's running example query (1) a single time, then
//! evaluates it against a growing sequence of database snapshots — the
//! shape of a production deployment where one fixed query meets millions of
//! data states. Compares the amortised per-evaluation cost against the
//! legacy one-shot API, which re-plans on every call.
//!
//! Run with `cargo run --release --example prepared_queries`.

use cqcount::prelude::*;
use cqcount::workloads::{erdos_renyi, graph_database};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    // ϕ(x) = ∃y ∃z F(x,y) ∧ F(x,z) ∧ y ≠ z — "x has two distinct friends".
    let q = parse_query("ans(x) :- F(x, y), F(x, z), y != z").unwrap();

    // Twelve snapshots of a growing social network.
    let snapshots: Vec<Database> = (0..12)
        .map(|day| {
            let n = 30 + 5 * day;
            let mut rng = StdRng::seed_from_u64(1000 + day as u64);
            let g = erdos_renyi(n, 3.0 / n as f64, &mut rng);
            graph_database(&g, "F", false)
        })
        .collect();

    let engine = Engine::builder()
        .accuracy(0.25, 0.05)
        .seed(7)
        .build()
        .unwrap();

    // Plan once...
    let t = Instant::now();
    let prepared = engine.prepare(&q).unwrap();
    let planning = t.elapsed();
    let summary = prepared.plan_summary();
    println!(
        "prepared {:?} query for {} (repetition budget {:?}) in {:.3} ms",
        summary.class,
        summary.method,
        summary.colour_repetitions,
        planning.as_secs_f64() * 1e3
    );

    // ...evaluate everywhere.
    let t = Instant::now();
    let reports = prepared.count_batch(&snapshots).unwrap();
    let prepared_time = t.elapsed();
    for (day, r) in reports.iter().enumerate() {
        println!(
            "day {day:>2}: estimate {:>7.1}   ({} oracle calls, {:.3} ms)",
            r.estimate,
            r.telemetry.oracle_calls,
            r.telemetry.wall.as_secs_f64() * 1e3
        );
    }

    // The legacy one-shot API re-plans per call; same estimates, more work.
    let cfg = engine.config().clone();
    let t = Instant::now();
    for (day, db) in snapshots.iter().enumerate() {
        let one_shot = approx_count_answers(&q, db, &cfg).unwrap();
        assert_eq!(
            one_shot.estimate, reports[day].estimate,
            "one-shot and prepared paths must agree bit-for-bit"
        );
    }
    let oneshot_time = t.elapsed();

    println!(
        "\n{} evaluations: prepared {:.1} ms total (+ {:.1} ms planning, paid once) vs one-shot {:.1} ms",
        snapshots.len(),
        prepared_time.as_secs_f64() * 1e3,
        planning.as_secs_f64() * 1e3,
        oneshot_time.as_secs_f64() * 1e3
    );
}
