//! Corollary 6 in action: counting locally injective homomorphisms, the
//! abstraction behind interference-free frequency assignment — a pattern
//! network must be mapped into a host network so that no two neighbours of a
//! transmitter share its frequency.
//!
//! Run with `cargo run --release --example frequency_assignment`.

use cqcount::core::lihom::PatternGraph;
use cqcount::prelude::*;
use cqcount::workloads::erdos_renyi;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 60;
    let mut rng = StdRng::seed_from_u64(3);
    let host = erdos_renyi(n, 5.0 / n as f64, &mut rng);
    let host_edges = host.undirected_edges();

    let cfg = ApproxConfig::new(0.25, 0.05).with_seed(11);
    for (name, pattern) in [
        ("relay chain  P4", PatternGraph::path(4)),
        ("hub with 3 antennas", PatternGraph::star(3)),
        ("ring of 4 stations", PatternGraph::cycle(4)),
    ] {
        let query = cqcount::core::locally_injective_query(&pattern);
        let db = cqcount::core::lihom::host_graph_database(n, &host_edges);
        let exact = exact_count_answers(&query, &db);
        let r = count_locally_injective_homomorphisms(&pattern, n, &host_edges, &cfg).unwrap();
        println!(
            "{name:22}  tw(H(ϕ)) bounded, |Δ| = {:2}   exact = {exact:6}   FPTRAS ≈ {:8.1}",
            query.disequalities().len(),
            r.estimate
        );
    }
}
