//! Observation 10: the Hamiltonian-path query has treewidth 1 yet encodes an
//! NP-hard counting problem — which is why the paper's positive results give
//! an FPTRAS (exponential in ‖ϕ‖) rather than an FPRAS.
//!
//! Run with `cargo run --release --example hamiltonian_paths`.

use cqcount::prelude::*;
use cqcount::query::query_hypergraph;

fn main() {
    for (name, n, edges) in [
        ("triangle", 3usize, vec![(0, 1), (1, 2), (2, 0)]),
        ("4-cycle", 4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]),
        (
            "K4",
            4,
            vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)],
        ),
    ] {
        let q = hamiltonian_path_query(n);
        let db = undirected_graph_database(n, &edges);
        let h = query_hypergraph(&q);
        let tw = cqcount::hypergraph::treewidth::treewidth_exact(&h).0;
        let exact = exact_count_answers(&q, &db);

        let cfg = ApproxConfig {
            epsilon: 0.3,
            delta: 0.1,
            seed: n as u64,
            colour_repetitions: Some(4usize.pow((n * (n - 1) / 2) as u32).min(8192)),
            ..Default::default()
        };
        let r = fptras_count(&q, &db, &cfg).unwrap();
        println!(
            "{name:9}  n = {n}, ‖ϕ‖ = {:3}, tw(H(ϕ)) = {tw}, |Δ| = {:2}   directed Hamiltonian paths: exact = {exact:3}, FPTRAS ≈ {:5.1}",
            q.size(),
            q.disequalities().len(),
            r.estimate
        );
    }
    println!("\nNote: the colour-coding budget grows as 4^|Δ| = 4^(n(n-1)/2) — the");
    println!("FPT price that Observation 10 shows cannot be avoided (no FPRAS unless NP = RP).");
}
